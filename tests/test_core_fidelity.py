"""Tests for fidelity ladders, hysteresis, priorities, supply, demand."""

import math

import pytest

from repro.core import (
    AdaptationTrigger,
    DEGRADE,
    DemandPredictor,
    EnergySupply,
    FidelityError,
    FidelityLadder,
    HOLD,
    PriorityLadder,
    UPGRADE,
    alpha_for_halflife,
)


class TestFidelityLadder:
    def test_starts_at_highest_fidelity(self):
        ladder = FidelityLadder("video", ["low", "mid", "high"])
        assert ladder.current == "high"
        assert ladder.at_top
        assert not ladder.at_bottom

    def test_custom_start_level(self):
        ladder = FidelityLadder("video", ["low", "mid", "high"], start="mid")
        assert ladder.current == "mid"

    def test_degrade_and_upgrade_walk_the_ladder(self):
        ladder = FidelityLadder("x", ["a", "b", "c"])
        assert ladder.degrade() == "b"
        assert ladder.degrade() == "a"
        assert ladder.at_bottom
        assert ladder.upgrade() == "b"
        assert ladder.transitions == 3

    def test_degrade_below_bottom_raises(self):
        ladder = FidelityLadder("x", ["only"])
        with pytest.raises(FidelityError):
            ladder.degrade()

    def test_upgrade_above_top_raises(self):
        ladder = FidelityLadder("x", ["a", "b"])
        with pytest.raises(FidelityError):
            ladder.upgrade()

    def test_empty_levels_rejected(self):
        with pytest.raises(FidelityError):
            FidelityLadder("x", [])

    def test_duplicate_levels_rejected(self):
        with pytest.raises(FidelityError):
            FidelityLadder("x", ["a", "a"])

    def test_set_level_jumps_and_counts_once(self):
        ladder = FidelityLadder("x", ["a", "b", "c"])
        ladder.set_level("a")
        assert ladder.current == "a"
        assert ladder.transitions == 1
        ladder.set_level("a")  # no-op
        assert ladder.transitions == 1

    def test_set_unknown_level_raises(self):
        with pytest.raises(FidelityError):
            FidelityLadder("x", ["a"]).set_level("z")

    def test_normalized_position(self):
        ladder = FidelityLadder("x", ["a", "b", "c"])
        assert ladder.normalized() == 1.0
        ladder.degrade()
        assert ladder.normalized() == pytest.approx(0.5)
        ladder.degrade()
        assert ladder.normalized() == 0.0

    def test_normalized_single_level(self):
        assert FidelityLadder("x", ["only"]).normalized() == 1.0


class TestEnergySupply:
    def test_residual_decreases_with_samples(self):
        supply = EnergySupply(100.0)
        supply.on_sample(0.1, watts=10.0, dt=0.1)
        assert supply.residual == pytest.approx(99.0)

    def test_initial_must_be_positive(self):
        with pytest.raises(ValueError):
            EnergySupply(0.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            EnergySupply(10.0).on_sample(0.0, 1.0, -0.1)

    def test_depletion_and_fraction(self):
        supply = EnergySupply(10.0)
        supply.on_sample(0.0, watts=10.0, dt=1.0)
        assert supply.depleted
        assert supply.fraction_remaining == 0.0

    def test_residual_can_go_negative(self):
        """Overrun is visible (a failed goal), not silently clamped."""
        supply = EnergySupply(10.0)
        supply.on_sample(0.0, watts=20.0, dt=1.0)
        assert supply.residual == pytest.approx(-10.0)

    def test_add_credits_energy(self):
        supply = EnergySupply(10.0)
        supply.add(5.0)
        assert supply.residual == pytest.approx(15.0)
        with pytest.raises(ValueError):
            supply.add(-1.0)


class TestAlphaForHalflife:
    def test_alpha_halves_weight_after_halflife(self):
        alpha = alpha_for_halflife(halflife=10.0, dt=1.0)
        assert alpha ** 10 == pytest.approx(0.5)

    def test_longer_halflife_means_larger_alpha(self):
        assert alpha_for_halflife(100.0, 1.0) > alpha_for_halflife(10.0, 1.0)

    def test_zero_halflife_gives_zero_alpha(self):
        assert alpha_for_halflife(0.0, 1.0) == 0.0

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            alpha_for_halflife(10.0, 0.0)


class TestDemandPredictor:
    def test_first_sample_initializes_estimate(self):
        predictor = DemandPredictor()
        predictor.update(8.0, dt=0.1, time_remaining=100.0)
        assert predictor.smoothed_watts == pytest.approx(8.0)

    def test_prediction_is_power_times_remaining(self):
        predictor = DemandPredictor()
        predictor.update(8.0, dt=0.1, time_remaining=100.0)
        assert predictor.predict(50.0) == pytest.approx(400.0)

    def test_no_samples_predicts_zero(self):
        assert DemandPredictor().predict(100.0) == 0.0

    def test_negative_remaining_predicts_zero(self):
        predictor = DemandPredictor()
        predictor.update(8.0, dt=0.1, time_remaining=10.0)
        assert predictor.predict(-5.0) == 0.0

    def test_estimate_converges_to_new_level(self):
        predictor = DemandPredictor(halflife_fraction=0.10)
        predictor.update(10.0, dt=0.1, time_remaining=100.0)
        for _ in range(2000):
            predictor.update(4.0, dt=0.1, time_remaining=100.0)
        assert predictor.smoothed_watts == pytest.approx(4.0, abs=0.01)

    def test_agility_grows_as_goal_nears(self):
        """Same power step is absorbed faster when less time remains."""

        def response(remaining):
            predictor = DemandPredictor(halflife_fraction=0.10)
            predictor.update(10.0, dt=0.1, time_remaining=remaining)
            for _ in range(100):  # 10 seconds of samples
                predictor.update(4.0, dt=0.1, time_remaining=remaining)
            return predictor.smoothed_watts

        far = response(remaining=1800.0)
        near = response(remaining=60.0)
        assert near < far  # closer to the new 4 W level

    def test_halflife_semantics_end_to_end(self):
        """After one half-life, old and new weigh equally (paper's example)."""
        remaining = 1800.0  # 30 minutes -> half-life 180 s
        predictor = DemandPredictor(halflife_fraction=0.10)
        predictor.update(10.0, dt=0.1, time_remaining=remaining)
        for _ in range(1800):  # 180 s of 0.1 s samples at the new level
            predictor.update(0.0, dt=0.1, time_remaining=remaining)
        assert predictor.smoothed_watts == pytest.approx(5.0, rel=0.01)

    def test_invalid_halflife_fraction_rejected(self):
        with pytest.raises(ValueError):
            DemandPredictor(halflife_fraction=0.0)


class TestAdaptationTrigger:
    def test_degrade_when_demand_exceeds_supply(self):
        trigger = AdaptationTrigger(initial_energy=1000.0)
        assert trigger.decide(predicted_demand=600.0, residual=500.0) == DEGRADE

    def test_hold_inside_hysteresis_zone(self):
        trigger = AdaptationTrigger(initial_energy=1000.0)
        # margin = 5% * 500 + 1% * 1000 = 35 J
        assert trigger.decide(480.0, 500.0) == HOLD

    def test_upgrade_beyond_margin(self):
        trigger = AdaptationTrigger(initial_energy=1000.0)
        assert trigger.decide(400.0, 500.0) == UPGRADE

    def test_margin_composition(self):
        trigger = AdaptationTrigger(
            initial_energy=1000.0, variable_fraction=0.05, constant_fraction=0.01
        )
        assert trigger.upgrade_margin(500.0) == pytest.approx(35.0)

    def test_constant_component_biases_against_low_energy_upgrades(self):
        """At low residual the constant term dominates the margin."""
        trigger = AdaptationTrigger(initial_energy=10_000.0)
        # Residual 100 J, demand 50 J: surplus 50 J < 5 + 100 J margin.
        assert trigger.decide(50.0, 100.0) == HOLD

    def test_zero_margin_configuration(self):
        trigger = AdaptationTrigger(
            initial_energy=1000.0, variable_fraction=0.0, constant_fraction=0.0
        )
        assert trigger.decide(499.0, 500.0) == UPGRADE

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptationTrigger(initial_energy=0.0)
        with pytest.raises(ValueError):
            AdaptationTrigger(initial_energy=1.0, variable_fraction=-0.1)


class FakeApp:
    """Minimal adaptive-application protocol for ladder tests."""

    def __init__(self, name, priority, levels=3):
        self.name = name
        self.priority = priority
        self.ladder = FidelityLadder(name, [f"l{i}" for i in range(levels)])

    def can_degrade(self):
        return not self.ladder.at_bottom

    def can_upgrade(self):
        return not self.ladder.at_top

    def degrade(self):
        return self.ladder.degrade()

    def upgrade(self):
        return self.ladder.upgrade()


class TestPriorityLadder:
    def make_apps(self):
        # Paper ordering: speech lowest, then video, map, web highest.
        return [
            FakeApp("web", 4),
            FakeApp("speech", 1),
            FakeApp("map", 3),
            FakeApp("video", 2),
        ]

    def test_degrade_picks_lowest_priority_first(self):
        ladder = PriorityLadder(self.make_apps())
        assert ladder.pick_degrade().name == "speech"

    def test_degrade_skips_exhausted_apps(self):
        apps = self.make_apps()
        ladder = PriorityLadder(apps)
        speech = next(a for a in apps if a.name == "speech")
        while speech.can_degrade():
            speech.degrade()
        assert ladder.pick_degrade().name == "video"

    def test_upgrade_picks_highest_priority_first(self):
        apps = self.make_apps()
        for app in apps:
            app.degrade()
        ladder = PriorityLadder(apps)
        assert ladder.pick_upgrade().name == "web"

    def test_upgrade_skips_apps_at_top(self):
        apps = self.make_apps()
        ladder = PriorityLadder(apps)
        # Only speech below top.
        next(a for a in apps if a.name == "speech").degrade()
        assert ladder.pick_upgrade().name == "speech"

    def test_none_when_nothing_can_adapt(self):
        apps = [FakeApp("solo", 1, levels=1)]
        ladder = PriorityLadder(apps)
        assert ladder.pick_degrade() is None
        assert ladder.pick_upgrade() is None

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PriorityLadder([FakeApp("a", 1), FakeApp("a", 2)])

    def test_priority_tie_breaks_by_insertion_order(self):
        apps = [FakeApp("first", 1), FakeApp("second", 1)]
        ladder = PriorityLadder(apps)
        assert ladder.pick_degrade().name == "first"

    def test_remove(self):
        apps = self.make_apps()
        ladder = PriorityLadder(apps)
        ladder.remove("speech")
        assert ladder.pick_degrade().name == "video"
