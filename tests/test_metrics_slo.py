"""Tests for repro.obs.slo: histogram bucket-shape SLO checks."""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    assert_histogram_slo,
    check_histogram_slo,
    histogram_from_snapshot,
    share_at_or_below,
)


def _snapshot(values, buckets=(0.5, 1.0, 2.0)):
    registry = MetricsRegistry()
    histogram = registry.histogram("ratio", buckets=buckets)
    for value in values:
        histogram.observe(value)
    return registry.snapshot()


class TestShare:
    def test_share_counts_buckets_at_or_below_bound(self):
        snapshot = _snapshot([0.2, 0.4, 0.9, 1.5, 5.0])
        histogram = histogram_from_snapshot(snapshot, "ratio")
        assert share_at_or_below(histogram, 0.5) == pytest.approx(0.4)
        assert share_at_or_below(histogram, 1.0) == pytest.approx(0.6)
        assert share_at_or_below(histogram, 2.0) == pytest.approx(0.8)

    def test_non_boundary_bound_rejected(self):
        histogram = histogram_from_snapshot(_snapshot([0.2]), "ratio")
        with pytest.raises(ValueError, match="not a bucket boundary"):
            share_at_or_below(histogram, 0.97)

    def test_empty_histogram_share_is_zero(self):
        histogram = histogram_from_snapshot(_snapshot([]), "ratio")
        assert share_at_or_below(histogram, 1.0) == 0.0

    def test_missing_histogram_raises_with_available_names(self):
        with pytest.raises(KeyError, match="ratio"):
            histogram_from_snapshot(_snapshot([1.0]), "nope")


class TestCheck:
    def test_healthy_shape_passes(self):
        snapshot = _snapshot([0.9, 0.95, 1.0, 0.99] * 30)
        problems = check_histogram_slo(
            snapshot, "ratio",
            min_count=100,
            max_mean=1.5,
            shares=[(1.0, 0.95, None), (0.5, None, 0.05)],
        )
        assert problems == []

    def test_min_count_violation_reported(self):
        problems = check_histogram_slo(_snapshot([1.0]), "ratio",
                                       min_count=100)
        assert any("count 1 < required 100" in p for p in problems)

    def test_share_violations_reported_both_sides(self):
        snapshot = _snapshot([0.1, 0.2, 0.3, 5.0])
        problems = check_histogram_slo(
            snapshot, "ratio",
            shares=[(0.5, None, 0.5),   # too much mass low
                    (2.0, 0.99, None)],  # tail too heavy
        )
        assert len(problems) == 2
        assert any("> allowed" in p for p in problems)
        assert any("< required" in p for p in problems)

    def test_max_mean_violation_reported(self):
        problems = check_histogram_slo(_snapshot([4.0, 6.0]), "ratio",
                                       max_mean=2.0)
        assert any("mean 5 > allowed" in p for p in problems)

    def test_missing_histogram_is_a_problem_not_a_crash(self):
        problems = check_histogram_slo({"histograms": {}}, "ghost")
        assert problems and "ghost" in problems[0]

    def test_bad_bound_is_a_problem_not_a_crash(self):
        problems = check_histogram_slo(_snapshot([1.0]), "ratio",
                                       shares=[(0.97, 0.5, None)])
        assert problems and "not a bucket boundary" in problems[0]

    def test_assert_raises_with_all_problems(self):
        snapshot = _snapshot([5.0])
        with pytest.raises(AssertionError, match="SLO violated"):
            assert_histogram_slo(snapshot, "ratio", min_count=10,
                                 max_mean=1.0)
        assert_histogram_slo(snapshot, "ratio", min_count=1)


class TestGoalRunShape:
    def test_goal_demand_ratio_shape_from_real_run(self):
        """The trace-smoke CI assertion, exercised in-process: a healthy
        goal run keeps its demand/supply ratio mass near 1.0."""
        from repro.experiments import run_goal_experiment
        from repro.obs.metrics import set_metrics

        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            run_goal_experiment(120.0, initial_energy=6000.0)
        finally:
            set_metrics(previous)
        snapshot = registry.snapshot()
        assert_histogram_slo(
            snapshot, "goal.demand_ratio",
            min_count=100,
            shares=[(1.25, 0.9, None)],
        )
