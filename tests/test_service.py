"""In-process tests of CampaignService: jobs, queues, cache, metrics.

These drive the orchestrator directly (no HTTP) with real worker
processes but tiny campaigns, so they stay fast while exercising the
full dispatch → execute → record path.
"""

import pytest

from repro.fleet import CampaignSpec, FleetRunner, ResultCache, Task
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service import (
    DONE,
    FAILED,
    QUEUED,
    CampaignService,
    JobRecord,
    results_document,
)


def value_spec(n=4, name="svc", scale=1.0):
    return CampaignSpec(
        name=name,
        tasks=tuple(
            Task(id=f"t{i}", fn="repro.fleet.library:seeded_value",
                 params={"seed": i, "scale": scale})
            for i in range(n)
        ),
    )


def failing_spec(name="doomed"):
    return CampaignSpec(
        name=name,
        tasks=(
            Task(id="ok", fn="repro.fleet.library:seeded_value",
                 params={"seed": 1}),
            Task(id="bad", fn="repro.fleet.library:always_fail",
                 params={"message": "no"}),
        ),
    )


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(workers=2, cache=tmp_path / "cache",
                          poll_s=0.02, backoff_s=0.01,
                          tracer=NULL_TRACER, metrics=MetricsRegistry())
    with svc:
        yield svc


class TestLifecycle:
    def test_job_runs_to_done(self, service):
        job_id = service.submit(value_spec())
        status = service.wait(job_id, timeout=30)
        assert status["state"] == DONE
        assert status["telemetry"]["done"] == 4
        result = service.result(job_id)
        assert set(result["values"]) == {"t0", "t1", "t2", "t3"}

    def test_submit_is_immediate_and_queued(self, service):
        job_id = service.submit(value_spec())
        # submit() returns before anything runs; the record exists now.
        status = service.status(job_id)
        assert status["state"] in (QUEUED, "running", DONE)
        service.wait(job_id, timeout=30)

    def test_failed_task_fails_the_job(self, service):
        job_id = service.submit(failing_spec(), retries=0)
        status = service.wait(job_id, timeout=30)
        assert status["state"] == FAILED
        result = service.result(job_id)
        assert result["state"] == FAILED
        assert [f["task_id"] for f in result["failures"]] == ["bad"]
        assert "RuntimeError" in result["failures"][0]["error"]
        assert result["values"]["ok"] == pytest.approx(
            FleetRunner(jobs=1, tracer=NULL_TRACER,
                        metrics=MetricsRegistry())
            .run(value_spec(2)).values["t1"]
        )

    def test_result_before_terminal_raises(self, service):
        job_id = service.submit(value_spec())
        try:
            with pytest.raises(KeyError):
                # May already be done on a fast machine; tolerate that.
                if service.status(job_id)["state"] != DONE:
                    service.result(job_id)
                else:
                    raise KeyError("already terminal")
        finally:
            service.wait(job_id, timeout=30)

    def test_unknown_job_raises(self, service):
        with pytest.raises(KeyError):
            service.status("j9999")

    def test_retries_recover_transient_faults(self, service, tmp_path):
        marker = tmp_path / "marker"
        spec = CampaignSpec(
            name="transient",
            tasks=(
                Task(id="flaky", fn="repro.fleet.library:fail_until_marker",
                     params={"marker": str(marker), "value": 5.0}),
            ),
        )
        job_id = service.submit(spec, retries=2)
        status = service.wait(job_id, timeout=30)
        assert status["state"] == DONE
        assert status["telemetry"]["retried"] >= 1
        assert service.result(job_id)["values"]["flaky"] == 5.0


class TestMultiTenancy:
    def test_identical_jobs_share_work(self, service):
        """Two clients submitting the same campaign execute it once."""
        spec = value_spec(6)
        j1 = service.submit(spec, queue="alpha", client="c1")
        j2 = service.submit(spec, queue="beta", client="c2")
        service.wait(j1, timeout=30)
        service.wait(j2, timeout=30)
        r1 = service.result(j1)
        r2 = service.result(j2)
        assert r1["values"] == r2["values"]
        executed = (r1["telemetry"]["succeeded"]
                    + r2["telemetry"]["succeeded"])
        served = r1["telemetry"]["cached"] + r2["telemetry"]["cached"]
        # Every distinct task ran exactly once; the other copy was
        # coalesced onto it or cache-served, regardless of interleaving.
        assert executed == 6
        assert served == 6

    def test_results_document_bit_identical_to_oneshot(self, service):
        spec = value_spec(5, name="bits")
        direct = FleetRunner(jobs=1, tracer=NULL_TRACER,
                             metrics=MetricsRegistry()).run(spec)
        job_id = service.submit(spec)
        service.wait(job_id, timeout=30)
        result = service.result(job_id)
        assert (results_document(result["campaign"], result["values"])
                == results_document(spec.name, direct.values))

    def test_second_submission_served_from_cache(self, service):
        spec = value_spec(3)
        j1 = service.submit(spec)
        service.wait(j1, timeout=30)
        j2 = service.submit(spec)
        status = service.wait(j2, timeout=30)
        assert status["telemetry"]["cached"] == 3
        assert status["telemetry"]["succeeded"] == 0
        assert status["telemetry"]["from_cache"] is True

    def test_queue_accounting(self, service):
        j1 = service.submit(value_spec(2), queue="alpha")
        j2 = service.submit(value_spec(2, name="svc2"), queue="beta")
        service.wait(j1, timeout=30)
        service.wait(j2, timeout=30)
        queues = service.queues()
        assert queues["alpha"]["jobs"] == 1
        assert queues["beta"]["jobs"] == 1
        assert queues["alpha"]["active_jobs"] == 0
        jobs = service.jobs()
        assert [j["job_id"] for j in jobs] == [j2, j1]  # newest first

    def test_priority_orders_within_queue(self):
        assert (JobRecord("a", value_spec(1), None, priority=5,
                          seq=2).sort_key()
                < JobRecord("b", value_spec(1), None, priority=0,
                            seq=1).sort_key())
        # Same priority: FIFO by admission order.
        assert (JobRecord("a", value_spec(1), None, priority=1,
                          seq=1).sort_key()
                < JobRecord("b", value_spec(1), None, priority=1,
                            seq=2).sort_key())


class TestObservability:
    def test_service_metrics(self, service):
        spec = value_spec(3)
        j1 = service.submit(spec)
        service.wait(j1, timeout=30)
        j2 = service.submit(spec)
        service.wait(j2, timeout=30)
        snapshot = service.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["service.jobs_submitted"] == 2
        assert counters["service.jobs_done"] == 2
        assert counters["fleet.cache_hit"] >= 3
        gauges = snapshot["gauges"]
        assert "fleet.queue_depth" in gauges
        assert "fleet.heartbeat_age_s" in gauges
        assert gauges["fleet.queue_depth"] == 0  # everything drained

    def test_failed_job_counted(self, service):
        job_id = service.submit(failing_spec(), retries=0)
        service.wait(job_id, timeout=30)
        assert service.metrics.counter("service.jobs_failed").value == 1

    def test_snapshot_shape(self, service):
        job_id = service.submit(value_spec(2))
        service.wait(job_id, timeout=30)
        snapshot = service.snapshot()
        assert snapshot["workers"] == 2
        assert snapshot["jobs"] == 1
        assert snapshot["reclaimed_workers"] == 0
        assert snapshot["uptime_s"] >= 0.0

    def test_worker_table(self, service):
        job_id = service.submit(value_spec(2))
        service.wait(job_id, timeout=30)
        workers = service.workers()
        assert len(workers) == 2
        assert all(w["alive"] for w in workers)
        assert sum(w["completed"] for w in workers) == 2


class TestSharedCacheWithOneshot:
    def test_sweep_cache_reused_by_service(self, tmp_path):
        """A one-shot run's cache warms the service, and vice versa."""
        cache_dir = tmp_path / "shared"
        spec = value_spec(3, name="crossover")
        FleetRunner(jobs=1, cache=cache_dir, tracer=NULL_TRACER,
                    metrics=MetricsRegistry()).run(spec)
        svc = CampaignService(workers=1, cache=cache_dir, poll_s=0.02,
                              tracer=NULL_TRACER, metrics=MetricsRegistry())
        with svc:
            job_id = svc.submit(spec)
            status = svc.wait(job_id, timeout=30)
        assert status["telemetry"]["cached"] == 3
        assert status["telemetry"]["succeeded"] == 0


def test_submit_after_stop_rejected(tmp_path):
    svc = CampaignService(workers=1, poll_s=0.02, tracer=NULL_TRACER,
                          metrics=MetricsRegistry())
    svc.start()
    svc.stop()
    with pytest.raises(RuntimeError):
        svc.submit(value_spec(1))


def test_pool_size_validation():
    from repro.service import WorkerPool

    with pytest.raises(ValueError):
        WorkerPool(0)
    with pytest.raises(ValueError):
        WorkerPool(1, heartbeat_s=1.0, heartbeat_timeout_s=0.5)
