"""Golden regression wall around the fleet robustness matrix.

The committed ``tests/goldens/fleet-matrix.json`` is the canonical
per-device × per-policy document for the pinned generated fleet
(4 devices, seed 7 — the ``repro sweep --fleet-size 4 --fleet-seed 7
--diff-against default`` campaign).  These tests assert the freshly
computed document is *byte-identical* to the golden across every
driver — serial, parallel workers, a warm result cache, and a
service-submitted job — so device-profile generation drift, calibrated
machine construction drift, or fold/serialization wobble fails loudly.
Intentional changes are re-blessed with
``python scripts/regen_goldens.py --fleet-matrix``.
"""

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service import CampaignService
from tests.golden_scenarios import (
    FLEET_CANDIDATES,
    FLEET_SEED,
    FLEET_SIZE,
    fleet_matrix_campaign_spec,
    fleet_matrix_golden_path,
    run_fleet_matrix_scenario,
)

REBLESS_HINT = (
    "\n\nIf this behaviour change is intentional, re-bless with: "
    "PYTHONPATH=src python scripts/regen_goldens.py --fleet-matrix"
)


def golden_document():
    path = fleet_matrix_golden_path()
    assert os.path.exists(path), (
        f"missing golden {path}; generate it with "
        f"scripts/regen_goldens.py --fleet-matrix"
    )
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def assert_matches_golden(document, driver):
    golden = golden_document()
    if document == golden:
        return
    got = json.loads(document)["rows"]
    want = json.loads(golden)["rows"]
    drifted = [f"{r.get('device')}/{r.get('policy')}"
               for r, g in zip(got, want) if r != g]
    raise AssertionError(
        f"fleet matrix document under {driver} is not byte-identical to "
        f"the golden (drifted rows: {drifted or 'serialization only'})"
        + REBLESS_HINT
    )


def test_serial_matches_golden():
    assert_matches_golden(run_fleet_matrix_scenario().document(), "serial")


def test_parallel_matches_golden():
    assert_matches_golden(run_fleet_matrix_scenario(jobs=2).document(),
                          "jobs=2")


def test_cache_warm_matches_golden(tmp_path):
    cache = tmp_path / "cache"
    cold = run_fleet_matrix_scenario(cache=cache)
    warm = run_fleet_matrix_scenario(cache=cache)
    assert_matches_golden(cold.document(), "cache-cold")
    assert_matches_golden(warm.document(), "cache-warm")


def test_service_submission_matches_golden(tmp_path):
    """A fleet campaign through the persistent service folds to the
    same bytes as the one-shot runner."""
    from repro.devices import fleet_from_values

    spec = fleet_matrix_campaign_spec()
    svc = CampaignService(workers=2, cache=tmp_path / "cache",
                          poll_s=0.02, backoff_s=0.01,
                          tracer=NULL_TRACER, metrics=MetricsRegistry())
    with svc:
        job_id = svc.submit(spec)
        status = svc.wait(job_id, timeout=240)
        assert status["state"] == "done"
        payload = svc.result(job_id)
    matrix = fleet_from_values(spec, payload["values"])
    assert_matches_golden(matrix.document(), "service")


def test_golden_devices_are_the_generated_fleet():
    """The golden's device block is exactly generate_fleet(4, 7)."""
    from repro.devices import generate_fleet

    golden = json.loads(golden_document())
    expected = [d.to_dict() for d in generate_fleet(FLEET_SIZE, FLEET_SEED)]
    assert golden["devices"] == expected


def test_golden_rows_are_meaningful():
    """Per device: the baseline self-row is exact, and the
    no-hysteresis candidate actually diverges on at least one
    miscalibrated device — the fleet axis carries signal."""
    golden = json.loads(golden_document())
    by_device = {}
    for row in golden["rows"]:
        by_device.setdefault(row["device"], {})[row["policy"]] = row
    assert len(by_device) == FLEET_SIZE
    for device, rows in by_device.items():
        baseline = rows["baseline"]
        assert baseline["identical"] is True, device
        assert baseline["windows"] == 0, device
        assert baseline["energy_delta_j"] == 0.0, device
        assert set(rows) == {"baseline", *FLEET_CANDIDATES}
    no_hyst = [by_device[d]["hysteresis=off,lookahead=off"]
               for d in by_device]
    diverged = [row for row in no_hyst if not row["identical"]]
    assert diverged, "no-hysteresis diverges on no device at all"
    assert any(row["windows"] > 0 and row["energy_delta_j"] != 0.0
               for row in diverged)


def test_golden_robustness_block_is_consistent():
    """The robustness summary is a pure fold of the rows."""
    golden = json.loads(golden_document())
    robustness = golden["robustness"]
    assert set(robustness) == set(FLEET_CANDIDATES)
    for policy, summary in robustness.items():
        rows = [r for r in golden["rows"] if r["policy"] == policy]
        assert summary["devices"] == FLEET_SIZE
        assert summary["diverged"] == sum(
            1 for r in rows if not r["identical"])
        deltas = [r["energy_delta_j"] for r in rows]
        assert summary["energy_delta_min_j"] == min(deltas)
        assert summary["energy_delta_max_j"] == max(deltas)
        assert summary["energy_delta_spread_j"] == max(deltas) - min(deltas)


def test_perturbed_profile_generation_fails_golden(monkeypatch):
    """The golden must be sensitive to device-generation drift: nudge
    the multiplier range and the document must change."""
    from repro.devices import profile as profile_mod
    from repro.fleet import diffmatrix

    monkeypatch.setattr(profile_mod, "MULTIPLIER_RANGE", (0.85, 1.20))
    monkeypatch.setattr(diffmatrix, "_RECORD_MEMO", {})
    document = run_fleet_matrix_scenario().document()
    assert document != golden_document(), (
        "perturbing fleet generation did not change the matrix document"
        " — the golden would not catch real drift"
    )


def test_document_round_trips():
    """from_dict(to_dict) reproduces the exact document bytes."""
    from repro.devices import FleetMatrix

    golden = golden_document()
    matrix = FleetMatrix.from_dict(json.loads(golden))
    assert matrix.document() == golden


@pytest.mark.parametrize("flag", ["max_windows", "max_abs_delta_j"])
def test_golden_grid_would_trip_ci_gate(flag):
    """A zero bound trips on every diverged row; a huge bound on none."""
    from repro.devices import FleetMatrix

    matrix = FleetMatrix.from_dict(json.loads(golden_document()))
    assert matrix.violations(**{flag: 0}), "zero bound trips nothing"
    assert matrix.violations(**{flag: 10**9}) == []