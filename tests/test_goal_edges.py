"""Edge-case tests for the goal-directed controller."""

import pytest

from repro.core import GoalDirectedController, Viceroy
from repro.hardware import ExternalSupply, Machine, PowerComponent
from repro.powerscope import OnlinePowerMonitor
from repro.sim import Simulator, Timeline


def bare_controller(goal_seconds=60.0, initial_energy=1000.0, **kwargs):
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("base", {"on": 5.0}, "on"))
    viceroy = Viceroy(sim)
    monitor = OnlinePowerMonitor(machine, period=0.1)
    controller = GoalDirectedController(
        viceroy, monitor, initial_energy=initial_energy,
        goal_seconds=goal_seconds, timeline=Timeline(), **kwargs,
    )
    return sim, machine, controller


class TestControllerEdges:
    def test_negative_goal_rejected(self):
        with pytest.raises(ValueError):
            bare_controller(goal_seconds=-1.0)

    def test_double_start_is_idempotent(self):
        sim, machine, controller = bare_controller()
        controller.start()
        controller.start()
        sim.run(until=5.0)
        assert controller.decisions > 0

    def test_stop_halts_decisions(self):
        sim, machine, controller = bare_controller()
        controller.start()
        sim.run(until=5.0)
        count = controller.decisions
        controller.stop()
        sim.run(until=20.0)
        assert controller.decisions == count

    def test_time_remaining_before_start(self):
        _sim, _machine, controller = bare_controller(goal_seconds=60.0)
        assert controller.time_remaining == 60.0

    def test_time_remaining_clamps_at_zero(self):
        sim, machine, controller = bare_controller(goal_seconds=10.0)
        controller.start()
        sim.run(until=15.0)
        assert controller.time_remaining == 0.0
        assert controller.goal_reached

    def test_predicted_demand_zero_before_samples(self):
        _sim, _machine, controller = bare_controller()
        assert controller.predicted_demand() == 0.0

    def test_no_applications_registered_reports_infeasible(self):
        """A bare viceroy can never degrade: an unmeetable goal is
        reported infeasible instead of silently thrashing."""
        alerts = []
        sim, machine, controller = bare_controller(
            goal_seconds=600.0, initial_energy=100.0,  # 5 W needs 3000 J
            on_infeasible=lambda t, d, r: alerts.append(t),
        )
        controller.start()
        sim.run(until=30.0)
        assert controller.infeasible_reported
        assert len(alerts) == 1  # reported once, not repeatedly

    def test_summary_shape_before_start(self):
        _sim, _machine, controller = bare_controller()
        summary = controller.summary()
        assert summary["goal_reached"] is False
        assert summary["decisions"] == 0

    def test_extend_goal_with_energy_credit(self):
        sim, machine, controller = bare_controller(
            goal_seconds=60.0, initial_energy=1000.0
        )
        controller.start()
        sim.run(until=10.0)
        before = controller.supply.residual
        controller.extend_goal(30.0, extra_energy=500.0)
        assert controller.goal_seconds == pytest.approx(90.0)
        assert controller.supply.residual == pytest.approx(before + 500.0)
