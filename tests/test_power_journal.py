"""Segment-journal power accounting: merging, folding, pins, context.

The journal is the tentpole of the event-driven accounting rework: one
entry per genuine change point, lazy folds into the attribution
dictionaries, and an exact-integral invariant (journal energy equals
the eagerly integrated total) that a property test hammers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    ExternalSupply,
    HardwareError,
    Machine,
    PowerComponent,
)
from repro.sim import Simulator


def make_machine(correction=None):
    sim = Simulator()
    machine = Machine(sim, ExternalSupply(), correction=correction)
    machine.attach(PowerComponent("base", {"on": 2.0, "off": 0.0}, "on"))
    return sim, machine


class TestJournalSegments:
    def test_unchanged_advances_merge_into_open_segment(self):
        sim, machine = make_machine()
        for t in (1.0, 2.5, 4.0):
            sim.run(until=t)
            machine.advance()
        journal = machine.journal
        assert len(journal) == 1
        assert journal[0].t0 == 0.0
        assert journal[0].t1 == 4.0
        assert journal[0].power == pytest.approx(2.0)

    def test_state_change_opens_new_segment(self):
        sim, machine = make_machine()
        sim.run(until=1.0)
        machine["base"].set_state("off")
        sim.run(until=3.0)
        machine.advance()
        journal = machine.journal
        assert [s.power for s in journal] == pytest.approx([2.0, 0.0])
        # Contiguous spans: each segment starts where the last ended.
        for prev, nxt in zip(journal, journal[1:]):
            assert prev.t1 == nxt.t0

    def test_context_change_opens_new_segment(self):
        sim, machine = make_machine()
        sim.run(until=1.0)
        token = machine.push_context("app", "work")
        sim.run(until=2.0)
        machine.pop_context(token)
        sim.run(until=3.0)
        machine.advance()
        contexts = [s.context for s in machine.journal]
        assert contexts == [
            ("Idle", "_kernel_idle"), ("app", "work"), ("Idle", "_kernel_idle")
        ]

    def test_journal_energy_matches_energy_total(self):
        sim, machine = make_machine()
        sim.run(until=1.0)
        machine["base"].set_state("off")
        sim.run(until=2.0)
        machine["base"].set_state("on")
        sim.run(until=5.0)
        machine.advance()
        assert machine.journal_energy() == pytest.approx(
            machine.energy_total, rel=1e-12
        )
        assert machine.energy_total == pytest.approx(2.0 * 4.0)


class TestLazyFold:
    def test_fold_attributes_to_context(self):
        sim, machine = make_machine()
        sim.run(until=1.0)
        token = machine.push_context("app", "work")
        sim.run(until=3.0)
        machine.pop_context(token)
        sim.run(until=4.0)
        machine.advance()
        by_process = machine.energy_by_process
        assert by_process["app"] == pytest.approx(2.0 * 2.0)
        assert by_process["Idle"] == pytest.approx(2.0 * 2.0)

    def test_fold_attributes_overlays_and_correction(self):
        sim, machine = make_machine(correction=lambda m: 0.5)
        sim.run(until=1.0)
        handle = machine.add_overlay(0.25, "Interrupts-WaveLAN")
        sim.run(until=3.0)
        machine.remove_overlay(handle)
        machine.advance()
        by_process = machine.energy_by_process
        # 2.5 W for 2 s under a 25% overlay.
        assert by_process["Interrupts-WaveLAN"] == pytest.approx(
            2.5 * 2.0 * 0.25
        )
        by_component = machine.energy_by_component
        assert by_component["(superlinear)"] == pytest.approx(0.5 * 3.0)
        assert by_component["base"] == pytest.approx(2.0 * 3.0)

    def test_process_and_component_views_sum_to_total(self):
        sim, machine = make_machine(correction=lambda m: 0.25)
        sim.run(until=1.0)
        token = machine.push_context("app")
        sim.run(until=2.0)
        machine.pop_context(token)
        machine.advance()
        assert sum(machine.energy_by_process.values()) == pytest.approx(
            machine.energy_total
        )
        assert sum(machine.energy_by_component.values()) == pytest.approx(
            machine.energy_total
        )

    def test_pin_blocks_compaction_until_released(self):
        sim, machine = make_machine()
        machine.pin_journal()
        for t in (1.0, 2.0, 3.0):
            sim.run(until=t)
            machine["base"].set_state("off" if t != 2.0 else "on")
        machine.advance()
        before = len(machine.journal)
        assert before >= 3
        machine.energy_by_process  # folds, but may not compact while pinned
        assert len(machine.journal) == before
        machine.unpin_journal()
        machine.energy_by_process
        assert len(machine.journal) < before
        # Energy survives compaction.
        assert machine.journal_energy() == pytest.approx(
            machine.energy_total, rel=1e-12
        )

    def test_unpin_without_pin_raises(self):
        _, machine = make_machine()
        with pytest.raises(HardwareError):
            machine.unpin_journal()

    def test_fold_is_idempotent(self):
        sim, machine = make_machine()
        sim.run(until=2.0)
        machine.advance()
        first = dict(machine.energy_by_process)
        again = dict(machine.energy_by_process)
        assert first == again


class TestContextStack:
    def test_out_of_order_pop(self):
        sim, machine = make_machine()
        token_a = machine.push_context("a", "fa")
        token_b = machine.push_context("b", "fb")
        machine.pop_context(token_a)  # unlink below the top
        assert machine.context == ("b", "fb")
        machine.pop_context(token_b)
        assert machine.context == ("Idle", "_kernel_idle")

    def test_unknown_token_raises_without_side_effects(self):
        sim, machine = make_machine()
        token = machine.push_context("a")
        with pytest.raises(HardwareError):
            machine.pop_context(object())
        assert machine.context == ("a", "main")
        machine.pop_context(token)

    def test_double_pop_raises(self):
        sim, machine = make_machine()
        token = machine.push_context("a")
        machine.pop_context(token)
        with pytest.raises(HardwareError):
            machine.pop_context(token)


class TestCorrectionEvaluation:
    def test_correction_evaluated_once_per_refresh_not_per_advance(self):
        calls = []

        def correction(machine):
            calls.append(machine.sim.now)
            return 0.1

        sim, machine = make_machine(correction=correction)
        machine.power  # prime the cache
        baseline = len(calls)
        for t in (1.0, 2.0, 3.0):
            sim.run(until=t)
            machine.advance()
        # Steady state: no state changes, so no re-evaluation at all.
        assert len(calls) == baseline
        machine["base"].set_state("off")
        sim.run(until=4.0)
        machine.advance()
        # Exactly one refresh for the change (the old code evaluated the
        # correction twice per integration step).
        assert len(calls) == baseline + 1
        sim.run(until=6.0)
        machine.advance()
        machine.power
        assert len(calls) == baseline + 1


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
            st.sampled_from(["none", "toggle", "push", "pop", "overlay"]),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_journal_energy_equals_total_for_any_schedule(script):
    """Invariant: the journal integrates exactly what advance() drains."""
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("base", {"on": 2.0, "off": 0.5}, "on"))
    tokens = []
    overlay = None
    state = "on"
    for dt, action in script:
        sim.run(until=sim.now + dt)
        if action == "toggle":
            state = "off" if state == "on" else "on"
            machine["base"].set_state(state)
        elif action == "push":
            tokens.append(machine.push_context(f"p{len(tokens)}"))
        elif action == "pop" and tokens:
            machine.pop_context(tokens.pop())
        elif action == "overlay":
            if overlay is None:
                overlay = machine.add_overlay(0.2, "irq")
            else:
                machine.remove_overlay(overlay)
                overlay = None
        else:
            machine.advance()
    machine.advance()
    assert machine.journal_energy() == pytest.approx(
        machine.energy_total, rel=1e-9, abs=1e-12
    )
    assert sum(machine.energy_by_process.values()) == pytest.approx(
        machine.energy_total, rel=1e-9, abs=1e-12
    )
