"""Integration tests: Section 3 fidelity experiments reproduce the
paper's orderings and (approximately) its savings bands.

These assert the *shape* of each figure — which configuration wins,
by roughly what factor — rather than absolute joules, which are model
outputs.  The full sweeps live in benchmarks/; tests use one object per
figure to stay fast.
"""

import pytest

from repro.experiments import (
    measure_map,
    measure_speech,
    measure_video,
    measure_web,
)
from repro.workloads import IMAGES, MAPS, UTTERANCES
from repro.workloads.videos import VideoClip


def fast_clip():
    """A shortened clip with the measurement clips' bitrate profile."""
    return VideoClip("fast", 12.0, 12.0, 16_250)


@pytest.fixture(scope="module")
def video_energies():
    clip = fast_clip()
    configs = (
        "baseline", "hw-only", "premiere-b", "premiere-c",
        "reduced-window", "combined",
    )
    return {c: measure_video(clip, c) for c in configs}


@pytest.fixture(scope="module")
def speech_energies():
    utt = UTTERANCES[1]
    configs = (
        "baseline", "hw-only", "reduced", "remote", "hybrid",
        "remote-reduced", "hybrid-reduced",
    )
    return {c: measure_speech(utt, c) for c in configs}


@pytest.fixture(scope="module")
def map_energies():
    city = MAPS[0]  # San Jose: dense grid, strongest filter effect
    configs = (
        "baseline", "hw-only", "minor-filter", "secondary-filter",
        "cropped", "crop-minor", "crop-secondary",
    )
    return {c: measure_map(city, c) for c in configs}


@pytest.fixture(scope="module")
def web_energies():
    image = IMAGES[0]  # 175 kB: largest, most distillable
    configs = ("baseline", "hw-only", "jpeg-75", "jpeg-50", "jpeg-25", "jpeg-5")
    return {c: measure_web(image, c) for c in configs}


class TestVideoFigure6:
    def test_hw_pm_saves_energy(self, video_energies):
        assert video_energies["hw-only"] < video_energies["baseline"]

    def test_compression_levels_ordered(self, video_energies):
        assert (
            video_energies["premiere-c"]
            < video_energies["premiere-b"]
            < video_energies["hw-only"]
        )

    def test_window_reduction_beats_compression(self, video_energies):
        """Paper: 19-20% (window) vs 16-17% (Premiere-C)."""
        assert video_energies["reduced-window"] < video_energies["premiere-c"]

    def test_combined_is_lowest(self, video_energies):
        assert video_energies["combined"] == min(video_energies.values())

    def test_combined_saving_vs_baseline_about_a_third(self, video_energies):
        saving = 1 - video_energies["combined"] / video_energies["baseline"]
        assert 0.30 <= saving <= 0.42  # paper: ~35%

    def test_premiere_c_band(self, video_energies):
        saving = 1 - video_energies["premiere-c"] / video_energies["hw-only"]
        assert 0.10 <= saving <= 0.20  # paper: 16-17%


class TestSpeechFigure8:
    def test_hw_pm_saving_band(self, speech_energies):
        saving = 1 - speech_energies["hw-only"] / speech_energies["baseline"]
        assert 0.30 <= saving <= 0.38  # paper: 33-34%

    def test_reduced_model_band(self, speech_energies):
        saving = 1 - speech_energies["reduced"] / speech_energies["hw-only"]
        assert 0.25 <= saving <= 0.46  # paper band

    def test_remote_band(self, speech_energies):
        saving = 1 - speech_energies["remote"] / speech_energies["hw-only"]
        assert 0.30 <= saving <= 0.47  # paper: 33-44%

    def test_hybrid_beats_remote(self, speech_energies):
        """Paper: hybrid offers slightly greater savings than remote."""
        assert speech_energies["hybrid"] < speech_energies["remote"]

    def test_reduced_fidelity_helps_each_strategy(self, speech_energies):
        assert speech_energies["remote-reduced"] < speech_energies["remote"]
        assert speech_energies["hybrid-reduced"] < speech_energies["hybrid"]

    def test_combined_reduction_vs_baseline(self, speech_energies):
        saving = 1 - speech_energies["hybrid-reduced"] / speech_energies["baseline"]
        assert 0.65 <= saving <= 0.82  # paper: 69-80%


class TestMapFigure10:
    def test_hw_pm_band(self, map_energies):
        saving = 1 - map_energies["hw-only"] / map_energies["baseline"]
        assert 0.09 <= saving <= 0.20  # paper: 9-19%

    def test_aggressive_filter_beats_mild(self, map_energies):
        assert map_energies["secondary-filter"] < map_energies["minor-filter"]

    def test_filters_and_crop_compose(self, map_energies):
        assert map_energies["crop-minor"] < map_energies["minor-filter"]
        assert map_energies["crop-minor"] < map_energies["cropped"]

    def test_lowest_fidelity_is_crop_secondary(self, map_energies):
        assert map_energies["crop-secondary"] == min(map_energies.values())

    def test_combined_band_vs_hw_only(self, map_energies):
        saving = 1 - map_energies["crop-secondary"] / map_energies["hw-only"]
        assert 0.36 <= saving <= 0.66  # paper band


class TestWebFigure13:
    def test_hw_pm_band(self, web_energies):
        saving = 1 - web_energies["hw-only"] / web_energies["baseline"]
        assert 0.20 <= saving <= 0.28  # paper: 22-26%

    def test_quality_levels_ordered(self, web_energies):
        assert (
            web_energies["jpeg-5"]
            <= web_energies["jpeg-25"]
            <= web_energies["jpeg-50"]
            <= web_energies["jpeg-75"]
            <= web_energies["hw-only"]
        )

    def test_fidelity_benefit_is_disappointing(self, web_energies):
        """Paper's headline: only 4-14% below hardware-only PM."""
        saving = 1 - web_energies["jpeg-5"] / web_energies["hw-only"]
        assert 0.0 <= saving <= 0.18

    def test_tiny_image_shows_no_fidelity_benefit(self):
        tiny = IMAGES[3]  # 110 B
        full = measure_web(tiny, "hw-only")
        low = measure_web(tiny, "jpeg-5")
        assert low == pytest.approx(full, rel=0.02)


class TestThinkTimeLinearity:
    """Figures 11 and 14: energy is linear in think time."""

    @pytest.mark.parametrize("config", ["baseline", "hw-only", "crop-secondary"])
    def test_map_energy_linear_in_think_time(self, config):
        from repro.analysis import fit_linear

        times = (0.0, 5.0, 10.0, 20.0)
        energies = [
            measure_map(MAPS[1], config, think_time_s=t) for t in times
        ]
        fit = fit_linear(times, energies)
        assert fit.r_squared > 0.999
        assert fit.slope > 0

    def test_baseline_slope_steeper_than_pm_slope(self):
        """Figure 11's diverging lines: PM savings scale with think time."""
        from repro.analysis import fit_linear

        times = (0.0, 5.0, 10.0, 20.0)

        def slope(config):
            energies = [
                measure_web(IMAGES[1], config, think_time_s=t) for t in times
            ]
            return fit_linear(times, energies).slope

        assert slope("baseline") > slope("hw-only")

    def test_pm_and_lowest_fidelity_slopes_parallel(self):
        """Figure 11's parallel lines: fidelity saving is think-time
        independent."""
        from repro.analysis import fit_linear

        times = (0.0, 5.0, 10.0, 20.0)

        def slope(config):
            energies = [
                measure_map(MAPS[0], config, think_time_s=t) for t in times
            ]
            return fit_linear(times, energies).slope

        assert slope("hw-only") == pytest.approx(slope("crop-secondary"), rel=0.02)
