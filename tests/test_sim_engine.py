"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Event, SchedulingError, Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_run_empty_queue_returns_now(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SchedulingError):
            sim.run(until=1.0)


class TestScheduling:
    def test_callback_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.5, lambda t: fired.append(t))
        sim.run()
        assert fired == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda t: None)

    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule(float("nan"), lambda t: None)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda t: order.append("c"))
        sim.schedule(1.0, lambda t: order.append("a"))
        sim.schedule(2.0, lambda t: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, lambda t, tag=tag: order.append(tag))
        sim.run()
        assert order == list("abcde")

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.0, lambda t: fired.append(t))
        sim.run()
        assert fired == [12.0]

    def test_schedule_at_clamps_float_drift(self):
        # Summing intervals can land "now" a few ulps past the absolute
        # time a caller computed independently; that must not raise.
        sim = Simulator()
        sim.schedule(0.1 + 0.2, lambda t: None)  # 0.30000000000000004
        sim.run()
        fired = []
        sim.schedule_at(0.3, lambda t: fired.append(t))  # tiny bit in the past
        sim.run()
        assert fired == [sim.now]

    def test_schedule_at_drift_clamp_scales_with_clock(self):
        sim = Simulator(start_time=1e6)
        fired = []
        sim.schedule_at(1e6 - 1e-5, lambda t: fired.append(t))  # within 1e-9 rel
        sim.run()
        assert fired == [1e6]

    def test_schedule_at_still_rejects_genuine_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(9.0, lambda t: None)

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda t: fired.append("early"))
        sim.schedule(5.0, lambda t: fired.append("late"))
        sim.run(until=3.0)
        assert fired == ["early"]
        assert sim.now == 3.0
        sim.run()
        assert fired == ["early", "late"]

    def test_event_scheduled_during_run_executes(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda t: sim.schedule(1.0, lambda t2: fired.append(t2)))
        sim.run()
        assert fired == [2.0]

    def test_peek_returns_next_event_time(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(4.0, lambda t: None)
        sim.schedule(2.0, lambda t: None)
        assert sim.peek() == 2.0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestWaitables:
    def test_event_trigger_delivers_value(self):
        sim = Simulator()
        event = Event(sim)
        got = []
        event.subscribe(got.append)
        event.succeed("payload")
        assert got == ["payload"]

    def test_event_trigger_is_idempotent(self):
        sim = Simulator()
        event = Event(sim)
        got = []
        event.subscribe(got.append)
        event.succeed(1)
        event.succeed(2)
        assert got == [1]

    def test_late_subscription_fires_immediately(self):
        sim = Simulator()
        event = Event(sim)
        event.succeed("x")
        got = []
        event.subscribe(got.append)
        assert got == ["x"]

    def test_timeout_fires_after_delay(self):
        sim = Simulator()
        timeout = sim.timeout(7.0)
        sim.run()
        assert timeout.triggered
        assert sim.now == 7.0

    def test_zero_timeout_fires_at_current_instant(self):
        sim = Simulator(start_time=3.0)
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.triggered
        assert sim.now == 3.0

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.timeout(-1.0)
