"""Tests for terminal chart rendering."""

import pytest

from repro.analysis import ascii_chart, ascii_staircase


class TestAsciiChart:
    def test_single_series_renders(self):
        chart = ascii_chart(
            [([0, 1, 2, 3], [0.0, 1.0, 2.0, 3.0])], width=20, height=5
        )
        lines = chart.splitlines()
        assert len(lines) == 5 + 2  # rows + axis + footer
        assert "*" in chart
        assert "t = 0 .. 3 s" in chart

    def test_two_series_use_distinct_markers(self):
        chart = ascii_chart(
            [
                ([0, 1, 2], [3.0, 2.0, 1.0]),
                ([0, 1, 2], [1.0, 2.0, 3.0]),
            ],
            labels=["down", "up"],
        )
        assert "*" in chart and "+" in chart
        assert "down" in chart and "up" in chart

    def test_extremes_on_axis_rows(self):
        chart = ascii_chart([([0, 10], [5.0, 50.0])], width=20, height=6)
        lines = chart.splitlines()
        assert lines[0].strip().startswith("50")
        assert lines[5].strip().startswith("5")

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart([([0, 1], [7.0, 7.0])])
        assert "*" in chart

    def test_title(self):
        chart = ascii_chart([([0, 1], [0.0, 1.0])], title="demo")
        assert chart.splitlines()[0] == "demo"

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([])
        with pytest.raises(ValueError):
            ascii_chart([([], [])])
        with pytest.raises(ValueError):
            ascii_chart([([0], [1.0])], width=4)


class TestAsciiStaircase:
    LEVELS = ("low", "mid", "high")

    def test_rows_ordered_highest_first(self):
        text = ascii_staircase(
            [0.0, 5.0, 10.0], ["high", "mid", "low"], self.LEVELS
        )
        lines = text.splitlines()
        assert lines[0].strip().startswith("high")
        assert lines[2].strip().startswith("low")

    def test_fill_forward_marks_span(self):
        text = ascii_staircase(
            [0.0, 10.0], ["high", "low"], self.LEVELS, width=20
        )
        high_row = next(l for l in text.splitlines() if l.strip().startswith("high"))
        # High held for the first half of the span.
        assert high_row.count("#") >= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_staircase([0.0], ["high", "low"], self.LEVELS)
        with pytest.raises(ValueError):
            ascii_staircase([], [], self.LEVELS)
        with pytest.raises(ValueError):
            ascii_staircase([0.0], ["warp"], self.LEVELS)

    def test_goal_experiment_staircase_end_to_end(self):
        from repro.experiments import run_goal_experiment
        from repro.apps.video import VIDEO_LEVELS

        result = run_goal_experiment(200.0, initial_energy=3000.0)
        records = [
            r for r in result.timeline.category("fidelity")
            if r.label == "video"
        ]
        times = [r.time for r in records]
        levels = [r.value[0] for r in records]
        text = ascii_staircase(times, levels, VIDEO_LEVELS,
                               title="video fidelity")
        assert "baseline" in text and "#" in text
