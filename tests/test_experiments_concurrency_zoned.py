"""Integration tests for the concurrency (Fig 15) and zoned-backlight
(Fig 18) studies."""

import pytest

from repro.experiments import (
    measure_composite,
    measure_map_zoned,
    measure_video_zoned,
)
from repro.workloads import MAPS
from repro.workloads.videos import VideoClip


def fast_clip():
    return VideoClip("fast", 10.0, 12.0, 16_250)


@pytest.fixture(scope="module")
def concurrency():
    table = {}
    for config in ("baseline", "hw-only", "lowest-fidelity"):
        table[config] = {
            "alone": measure_composite(config, with_video=False, iterations=1),
            "concurrent": measure_composite(config, with_video=True, iterations=1),
        }
    return table


class TestConcurrencyFigure15:
    def test_concurrency_adds_energy(self, concurrency):
        for config, pair in concurrency.items():
            assert pair["concurrent"] > pair["alone"], config

    def test_concurrency_amortizes_background_power(self, concurrency):
        """The second application adds far less than 100% more energy."""
        for config, pair in concurrency.items():
            extra = pair["concurrent"] / pair["alone"] - 1
            assert extra < 0.75, f"{config}: +{extra:.0%}"

    def test_orderings_hold_under_concurrency(self, concurrency):
        assert (
            concurrency["lowest-fidelity"]["concurrent"]
            < concurrency["hw-only"]["concurrent"]
            < concurrency["baseline"]["concurrent"]
        )

    def test_fidelity_savings_survive_concurrency(self, concurrency):
        saving = 1 - (
            concurrency["lowest-fidelity"]["concurrent"]
            / concurrency["hw-only"]["concurrent"]
        )
        assert saving > 0.25

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            measure_composite("turbo", with_video=False)


class TestZonedFigure18:
    def test_video_fullfid_zone_occupancy_matches_paper(self):
        """Full-fidelity video: 1 of 4 zones, 2 of 8 zones (§4.2)."""
        clip = fast_clip()
        _e4, lit4 = measure_video_zoned(clip, "hw-only", "4-zones")
        _e8, lit8 = measure_video_zoned(clip, "hw-only", "8-zones")
        assert lit4 == 1
        assert lit8 == 2

    def test_video_lowfid_fits_single_zone_both_grids(self):
        clip = fast_clip()
        _e4, lit4 = measure_video_zoned(clip, "combined", "4-zones")
        _e8, lit8 = measure_video_zoned(clip, "combined", "8-zones")
        assert lit4 == 1
        assert lit8 == 1

    def test_map_zone_occupancy_matches_paper(self):
        """Full map: all 4 / 6 of 8; cropped map: 2 of 4 / 3 of 8."""
        city = MAPS[1]
        assert measure_map_zoned(city, "hw-only", "4-zones")[1] == 4
        assert measure_map_zoned(city, "hw-only", "8-zones")[1] == 6
        assert measure_map_zoned(city, "crop-secondary", "4-zones")[1] == 2
        assert measure_map_zoned(city, "crop-secondary", "8-zones")[1] == 3

    def test_zoning_saves_video_energy(self):
        clip = fast_clip()
        none = measure_video_zoned(clip, "hw-only", "no-zones")[0]
        four = measure_video_zoned(clip, "hw-only", "4-zones")[0]
        eight = measure_video_zoned(clip, "hw-only", "8-zones")[0]
        assert four < none
        assert eight <= four + 1e-9

    def test_map_full_fidelity_no_benefit_in_4_zone(self):
        """Paper: the full map occupies all 4 zones, so no savings."""
        city = MAPS[1]
        none = measure_map_zoned(city, "hw-only", "no-zones")[0]
        four = measure_map_zoned(city, "hw-only", "4-zones")[0]
        assert four == pytest.approx(none, rel=0.01)

    def test_map_8_zone_benefit_at_full_fidelity(self):
        city = MAPS[1]
        none = measure_map_zoned(city, "hw-only", "no-zones")[0]
        eight = measure_map_zoned(city, "hw-only", "8-zones")[0]
        assert eight < none

    def test_low_fidelity_enhances_zoned_savings(self):
        """Paper: lowering fidelity enhances the zoned benefit."""
        city = MAPS[1]

        def saving(config):
            none = measure_map_zoned(city, config, "no-zones")[0]
            four = measure_map_zoned(city, config, "4-zones")[0]
            return 1 - four / none

        assert saving("crop-secondary") > saving("hw-only")

    def test_video_zoned_saving_band(self):
        """Paper: video 4-zone full-fidelity savings ~17-18% of baseline
        energy; band kept loose for the shortened clip."""
        clip = fast_clip()
        none = measure_video_zoned(clip, "hw-only", "no-zones")[0]
        four = measure_video_zoned(clip, "hw-only", "4-zones")[0]
        saving = 1 - four / none
        assert 0.10 <= saving <= 0.30
