"""Campaign-level tests: determinism, caching, wiring into experiments.

The acceptance bar for the fleet: a campaign run with ``jobs=1`` and
``jobs=4`` (and a cache-warm re-run) must produce identical aggregate
tables, and a campaign with injected faults must still return partial
results with the failures recorded.
"""

import pytest

from repro.experiments import map_energy_table, run_trials
from repro.experiments.figures import export_figures
from repro.experiments.summary import fidelity_summary
from repro.fleet import (
    CampaignSpec,
    FleetRunner,
    Task,
    energy_table,
    figures_campaign,
    run_sweep,
    sweep_campaign,
    tables_from_result,
)
from repro.fleet.campaigns import APPS
from repro.workloads import MAPS


def _module_experiment(costs):
    """Module-level (hence picklable) experiment for run_trials tests."""
    from repro.experiments import measure_map

    return measure_map(MAPS[0], "cropped", costs=costs)


class TestDeterminism:
    def test_serial_parallel_and_cached_aggregates_identical(self, tmp_path):
        # 28 map tasks + 24 web tasks: comfortably past the 20-task bar.
        spec = sweep_campaign(["map", "web"])
        assert len(spec) >= 20
        serial = FleetRunner(jobs=1).run(spec)
        parallel = FleetRunner(jobs=4, cache=tmp_path / "c").run(spec)
        warm = FleetRunner(jobs=4, cache=tmp_path / "c").run(spec)

        t_serial = tables_from_result(serial)
        t_parallel = tables_from_result(parallel)
        t_warm = tables_from_result(warm)
        assert t_serial == t_parallel  # bit-identical floats
        assert t_serial == t_warm
        assert parallel.telemetry.executed == len(spec)
        assert warm.telemetry.executed == 0
        assert warm.telemetry.cached == len(spec)

    def test_fleet_table_matches_serial_experiment_code(self):
        fleet = energy_table("map", jobs=2)
        serial = map_energy_table()
        assert fleet == serial

    def test_trials_aggregate_identical_serial_vs_fleet(self):
        stats_serial = run_trials(_module_experiment, trials=4)
        stats_fleet = run_trials(_module_experiment, trials=4, jobs=2)
        assert stats_serial == stats_fleet

    def test_unpicklable_experiment_degrades_to_serial(self):
        baseline = run_trials(lambda costs: 1.0, trials=3)
        fleet = run_trials(lambda costs: 1.0, trials=3, jobs=2)
        assert baseline == fleet

    def test_trials_zero_still_rejected_with_jobs(self):
        with pytest.raises(ValueError, match="at least one trial"):
            run_trials(_module_experiment, trials=0, jobs=2)


class TestFaultInjection:
    def test_sweep_with_injected_fault_returns_partial_tables(self):
        spec = sweep_campaign(["map"])
        poisoned = CampaignSpec(
            name="poisoned",
            tasks=spec.tasks + (
                Task(id="inject/bad/task",
                     fn="repro.fleet.library:always_fail"),
                Task(id="foreign-task",
                     fn="repro.fleet.library:always_fail"),
            ),
        )
        result = FleetRunner(jobs=2, retries=0).run(poisoned)
        assert not result.ok
        assert {f.task_id for f in result.failures} == {
            "inject/bad/task", "foreign-task",
        }
        tables = tables_from_result(result)
        # Every real cell survived; the failed pseudo-cell is omitted.
        assert set(tables["map"]) == set(APPS["map"]["configs"])
        assert "inject" not in tables.get("map", {})

    def test_energy_table_raises_on_failure(self):
        with pytest.raises(Exception) as err:
            energy_table("map", jobs=1, objects=["no-such-city"], retries=0)
        assert "no-such-city" in str(err.value)


class TestWiring:
    def test_run_sweep_returns_tables_and_telemetry(self):
        tables, result = run_sweep(apps=["map"], jobs=2)
        assert result.ok
        assert set(tables) == {"map"}
        assert result.telemetry.total == len(result.results)
        assert result.telemetry.succeeded == result.telemetry.total

    def test_sweep_trials_cells_are_stats(self):
        tables, result = run_sweep(
            apps=["map"], jobs=2, trials=3,
            think_time_s=1.0,
        )
        cell = tables["map"]["cropped"][MAPS[0].name]
        assert cell.n == 3
        assert cell.ci90 >= 0.0

    def test_figures_campaign_export_matches_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        fleet_dir = tmp_path / "fleet"
        serial = export_figures(str(serial_dir), figures=["fig10"])
        fleet = export_figures(str(fleet_dir), figures=["fig10"], jobs=2)
        assert len(serial) == len(fleet) == 1
        with open(serial[0]) as fh:
            serial_text = fh.read()
        with open(fleet[0]) as fh:
            fleet_text = fh.read()
        assert serial_text == fleet_text

    def test_figures_campaign_rejects_unknown(self):
        with pytest.raises(KeyError):
            figures_campaign(["not-a-figure"])

    def test_fidelity_summary_fleet_matches_serial(self):
        # Restrict the comparison to one app's tables via monkey-free
        # full-table equality: summary over fleet tables must equal the
        # serial summary because the underlying values are identical.
        serial = fidelity_summary()
        fleet = fidelity_summary(jobs=2)
        assert serial == fleet


class TestCli:
    def test_cli_sweep_smoke(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--apps", "map", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--csv-dir", str(tmp_path / "csv"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet:" in out
        assert "failed 0" in out
        assert (tmp_path / "csv" / "sweep_map.csv").exists()

        # Warm re-run: zero executed tasks.
        code = main([
            "sweep", "--apps", "map", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cached 28" in out

    def test_cli_fig10_jobs_matches_serial(self, capsys):
        from repro.cli import main

        assert main(["fig10"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["fig10", "--jobs", "2"]) == 0
        fleet_out = capsys.readouterr().out
        assert serial_out == fleet_out
