"""Warm-started sweeps: prefix restore must be invisible in results."""

from repro.fleet.runner import FleetRunner
from repro.fleet.spec import canonical_json
from repro.snapshot.warm import TASK_FN, build_warm_campaign, pulse_goal_summary

#: Small-but-adaptive sizing: full fidelity misses, floor makes it.
FAST = {"goal_seconds": 150.0, "initial_energy": 1250.0}
EXTEND_AT = 60.0


def _strip(summary):
    return {k: v for k, v in summary.items() if k != "snapshot_restored"}


def test_warm_miss_then_hit(tmp_path):
    cold = pulse_goal_summary(extend_by=10.0, extend_energy=80.0,
                              extend_at=EXTEND_AT, **FAST)
    assert cold["snapshot_restored"] is False
    miss = pulse_goal_summary(extend_by=10.0, extend_energy=80.0,
                              extend_at=EXTEND_AT, warm=True,
                              snapshot_dir=tmp_path, **FAST)
    hit = pulse_goal_summary(extend_by=10.0, extend_energy=80.0,
                             extend_at=EXTEND_AT, warm=True,
                             snapshot_dir=tmp_path, **FAST)
    assert miss["snapshot_restored"] is False
    assert hit["snapshot_restored"] is True
    assert canonical_json(_strip(cold)) == canonical_json(_strip(miss))
    assert canonical_json(_strip(cold)) == canonical_json(_strip(hit))


def test_sweep_points_share_one_prefix(tmp_path):
    """Different extensions, same prefix: after the first point every
    later point restores instead of re-simulating."""
    flags = [
        pulse_goal_summary(extend_by=ext, extend_energy=ext * 8.0,
                           extend_at=EXTEND_AT, warm=True,
                           snapshot_dir=tmp_path,
                           **FAST)["snapshot_restored"]
        for ext in (0.0, 10.0, 20.0)
    ]
    assert flags == [False, True, True]


def test_policies_do_not_share_prefixes(tmp_path):
    """The lookahead axis changes builder params, hence the key: a
    lookahead point must never restore a plain-policy prefix."""
    base = pulse_goal_summary(extend_at=EXTEND_AT, warm=True,
                              snapshot_dir=tmp_path, **FAST)
    look = pulse_goal_summary(extend_at=EXTEND_AT, warm=True,
                              snapshot_dir=tmp_path, lookahead=True, **FAST)
    assert base["snapshot_restored"] is False
    assert look["snapshot_restored"] is False


def test_campaign_structure():
    spec = build_warm_campaign(extensions=(0.0, 20.0),
                               lookahead_axis=(False, True),
                               snapshot_dir="unused", **FAST)
    assert [t.id for t in spec.tasks] == [
        "base/ext0", "base/ext20", "lookahead/ext0", "lookahead/ext20",
    ]
    assert all(t.fn == TASK_FN for t in spec.tasks)
    assert spec.tasks[1].params["extend_energy"] == 160.0
    assert spec.tasks[3].params["lookahead"] is True


def test_runner_counts_restored_tasks(tmp_path):
    spec = build_warm_campaign(extensions=(0.0, 10.0),
                               lookahead_axis=(False,),
                               extend_at=EXTEND_AT,
                               snapshot_dir=str(tmp_path), **FAST)
    first = FleetRunner(jobs=1).run(spec)
    assert first.ok
    assert first.telemetry.restored == 1
    assert first.telemetry.snapshot()["restored"] == 1

    again = build_warm_campaign(extensions=(0.0, 10.0),
                                lookahead_axis=(False,),
                                extend_at=EXTEND_AT, name="again",
                                snapshot_dir=str(tmp_path), **FAST)
    second = FleetRunner(jobs=1).run(again)
    assert second.telemetry.restored == 2
    for a, b in zip(first.results, second.results):
        assert canonical_json(_strip(a.value)) == canonical_json(
            _strip(b.value))


def test_cold_campaign_reports_zero_restored():
    spec = build_warm_campaign(extensions=(0.0,), lookahead_axis=(False,),
                               extend_at=EXTEND_AT, warm=False, **FAST)
    result = FleetRunner(jobs=1).run(spec)
    assert result.ok
    assert result.telemetry.restored == 0
    assert "restored" not in result.telemetry.render()
