"""Property-based tests for scheduling, RPC accounting, and memory."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import ExternalSupply, Machine, MemorySystem, PowerComponent
from repro.sim import QuantumScheduler, Simulator


@settings(max_examples=30)
@given(
    quantum=st.floats(min_value=0.01, max_value=1.0),
    durations=st.lists(
        st.floats(min_value=0.01, max_value=3.0), min_size=1, max_size=6
    ),
)
def test_scheduler_is_work_conserving(quantum, durations):
    """Total completion time equals total work when jobs saturate the
    CPU: no idle gaps are inserted by the slicing."""
    sim = Simulator()
    scheduler = QuantumScheduler(sim, quantum=quantum)
    finished = []

    def worker(duration):
        yield from scheduler.run(duration)
        finished.append(sim.now)

    for duration in durations:
        sim.spawn(worker(duration))
    sim.run()
    assert math.isclose(max(finished), sum(durations), rel_tol=1e-9)


@settings(max_examples=30)
@given(
    quantum=st.floats(min_value=0.05, max_value=0.5),
    work_a=st.floats(min_value=0.1, max_value=2.0),
    work_b=st.floats(min_value=0.1, max_value=2.0),
)
def test_scheduler_attribution_proportional_to_work(quantum, work_a, work_b):
    """Per-process energy shares follow work shares under slicing."""
    sim = Simulator()
    scheduler = QuantumScheduler(sim, quantum=quantum)
    machine = Machine(sim, ExternalSupply(), scheduler=scheduler)
    machine.attach(PowerComponent("base", {"on": 5.0}, "on"))

    def app(tag, work):
        yield from machine.compute(work, tag)

    sim.spawn(app("a", work_a))
    sim.spawn(app("b", work_b))
    sim.run()
    machine.advance()
    report = machine.energy_report()
    total_work = work_a + work_b
    # Machine power is constant 5 W here, so energy share == time share.
    assert math.isclose(
        report["a"], 5.0 * work_a, rel_tol=1e-9, abs_tol=1e-9
    )
    assert math.isclose(
        report["b"], 5.0 * work_b, rel_tol=1e-9, abs_tol=1e-9
    )
    assert math.isclose(
        machine.energy_total, 5.0 * total_work, rel_tol=1e-9
    )


@settings(max_examples=30)
@given(
    capacity=st.floats(min_value=16.0, max_value=128.0),
    ws_a=st.floats(min_value=1.0, max_value=100.0),
    ws_b=st.floats(min_value=1.0, max_value=100.0),
)
def test_memory_pressure_monotone(capacity, ws_a, ws_b):
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    memory = MemorySystem(machine, capacity_mb=capacity)
    memory.declare("a", ws_a)
    pressure_one = memory.pressure
    memory.declare("b", ws_b)
    pressure_two = memory.pressure
    assert pressure_two >= pressure_one
    assert 0.0 <= memory.paging_fraction() <= 0.9
    memory.release("b")
    assert memory.pressure == pressure_one


@settings(max_examples=20)
@given(
    req=st.integers(min_value=100, max_value=100_000),
    reply=st.integers(min_value=100, max_value=100_000),
    work=st.floats(min_value=0.0, max_value=3.0),
)
def test_rpc_elapsed_time_accounting(req, reply, work):
    """RPC elapsed time = transfer times + server time, exactly."""
    from repro.hardware import build_machine
    from repro.net import Link, RpcChannel, Server

    sim = Simulator()
    machine = build_machine(sim)
    link = Link(machine, bandwidth_bps=2e6, latency=0.005)
    server = Server("s", speed=1.0)
    channel = RpcChannel(link, server)
    got = []

    def client():
        took = yield from channel.call(req, reply, work_units=work)
        got.append(took)

    sim.spawn(client())
    sim.run()
    expected = link.transfer_time(req) + link.transfer_time(reply) + work
    assert math.isclose(got[0], expected, rel_tol=1e-9)
