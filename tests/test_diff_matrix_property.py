"""Property-based tests for the policy diff matrix fold.

The matrix is a pure fold over per-row diff results, so its algebra is
testable without goldens:

* the baseline diffed against itself is the zero row — no windows, no
  energy delta, identical spines, matching signatures;
* permuting the candidate order permutes the rows but changes no row's
  *contents* (each row depends only on its own candidate + baseline);
* perturbing exactly one candidate perturbs exactly one row;
* hypothesis-driven small policy grids: every produced matrix is
  internally consistent (labels unique, baseline row first and zero,
  deltas arithmetically coherent with the totals).

All runs use a short pinned scenario (60 s / 520 J) so the per-process
record memo in ``repro.fleet.diffmatrix`` keeps the suite fast.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.diffmatrix import (
    matrix_from_result,
    parse_policy_spec,
    policy_label,
    policy_matrix_campaign,
    policy_matrix_row,
)
from repro.fleet.runner import FleetRunner

#: Short pulse sizing: ~0.00 s wall per simulation, still adapts.
SCENARIO = {"goal_seconds": 60.0, "initial_energy": 520.0}


def run_matrix(candidates, baseline=None):
    spec = policy_matrix_campaign(candidates, baseline=baseline,
                                  scenario=dict(SCENARIO))
    return matrix_from_result(FleetRunner(jobs=1).run(spec))


def zero_row(row):
    return (row["identical"] and row["windows"] == 0
            and row["divergent_decisions"] == 0
            and row["energy_delta_j"] == 0.0
            and row["first_divergence_did"] is None
            and row["shape_distance"] == 0.0
            and row["behaviour_match"])


class TestBaselineSelfRow:
    def test_baseline_row_is_exactly_zero(self):
        matrix = run_matrix(["hysteresis=off"])
        assert zero_row(matrix.rows[0])
        assert matrix.rows[0]["policy"] == "baseline"

    def test_candidate_equal_to_baseline_is_zero(self):
        """A candidate whose params *equal* the baseline's folds to the
        zero row too — the differ keys on behaviour, not labels."""
        matrix = run_matrix(
            [("same-as-baseline", {"variable_fraction": 0.0,
                                   "constant_fraction": 0.0})],
            baseline="hysteresis=off")
        (row,) = matrix.candidate_rows
        assert zero_row(row)

    def test_self_row_direct(self):
        row = policy_matrix_row("self", candidate={}, baseline={},
                                scenario=dict(SCENARIO))
        assert zero_row(row)
        assert row["energy_total_j"] == row["baseline_energy_j"]


class TestPermutationInvariance:
    CANDIDATES = ("hysteresis=off", "lookahead=on,horizon=6",
                  "decision_period=1.0")

    def test_row_contents_independent_of_order(self):
        forward = run_matrix(list(self.CANDIDATES))
        backward = run_matrix(list(reversed(self.CANDIDATES)))
        fwd = {r["policy"]: r for r in forward.rows}
        bwd = {r["policy"]: r for r in backward.rows}
        assert fwd == bwd
        # ... while the row *order* follows the candidate order.
        assert [r["policy"] for r in forward.candidate_rows] == \
            list(self.CANDIDATES)
        assert [r["policy"] for r in backward.candidate_rows] == \
            list(reversed(self.CANDIDATES))


class TestSinglePerturbation:
    def test_one_perturbed_candidate_one_nonzero_row(self):
        """Three baseline-identical candidates plus one perturbed one:
        exactly the perturbed row is nonzero."""
        matrix = run_matrix([
            ("twin-a", {}),
            ("twin-b", {}),
            ("perturbed", parse_policy_spec("hysteresis=off")),
            ("twin-c", {}),
        ])
        nonzero = [r["policy"] for r in matrix.candidate_rows
                   if not zero_row(r)]
        assert nonzero == ["perturbed"]


@st.composite
def policy_grids(draw):
    """Small grids over the hysteresis/lookahead policy space."""
    pool = [
        {},
        parse_policy_spec("hysteresis=off"),
        parse_policy_spec("lookahead=on,horizon=6"),
        parse_policy_spec("lookahead=on,horizon=12"),
        parse_policy_spec("decision_period=1.0"),
    ]
    indices = draw(st.lists(st.integers(0, len(pool) - 1),
                            min_size=1, max_size=3, unique=True))
    return [(f"cand-{i}", pool[i]) for i in indices]


@settings(max_examples=8, deadline=None)
@given(grid=policy_grids())
def test_matrix_internally_consistent(grid):
    matrix = run_matrix(grid)
    labels = [r["policy"] for r in matrix.rows]
    assert labels[0] == "baseline"
    assert len(labels) == len(set(labels)) == len(grid) + 1
    assert zero_row(matrix.rows[0])
    for row in matrix.candidate_rows:
        # Delta arithmetic is coherent with the recorded totals.
        assert row["energy_delta_j"] == pytest.approx(
            row["energy_total_j"] - row["baseline_energy_j"])
        # The default-policy candidate IS the baseline behaviourally.
        if not row["params"]:
            assert zero_row(row)
        # Zero windows and behaviour match imply the zero row.
        if row["windows"] == 0 and row["behaviour_match"]:
            assert zero_row(row)


def test_label_parse_round_trip():
    """policy_label(parse_policy_spec(label)) is stable for canonical
    labels — the matrix key space is well-defined."""
    for text in ("variable_fraction=0,constant_fraction=0",
                 "horizon=6,lookahead=on",
                 "decision_period=1"):
        params = parse_policy_spec(text)
        label = policy_label(params)
        assert parse_policy_spec(label) == params
        assert policy_label(parse_policy_spec(label)) == label
