"""Unit tests for the fleet campaign engine: spec, cache, worker, runner."""

import os
import pickle

import pytest

from repro.fleet import (
    CampaignError,
    CampaignSpec,
    FleetRunner,
    ResultCache,
    Task,
    TaskTimeout,
    derive_seed,
    execute_task,
    resolve_callable,
    task_key,
)


class TestSpec:
    def test_task_key_is_stable_and_order_independent(self):
        a = Task(id="a", fn="repro.fleet.library:seeded_value",
                 params={"seed": 1, "scale": 2.0})
        b = Task(id="b", fn="repro.fleet.library:seeded_value",
                 params={"scale": 2.0, "seed": 1})
        assert a.key() == b.key()
        assert a.key() == task_key(a.fn, a.params)

    def test_task_key_changes_with_params(self):
        a = Task(id="a", fn="f:g", params={"seed": 1})
        b = Task(id="b", fn="f:g", params={"seed": 2})
        assert a.key() != b.key()

    def test_payload_tasks_are_uncacheable(self):
        task = Task(id="a", fn="f:g", payload=(lambda: None,))
        assert not task.cacheable
        assert task.key() is None

    def test_non_json_params_rejected(self):
        with pytest.raises(TypeError):
            Task(id="a", fn="f:g", params={"x": object()})

    def test_duplicate_task_ids_rejected(self):
        tasks = [Task(id="a", fn="f:g"), Task(id="a", fn="f:h")]
        with pytest.raises(ValueError):
            CampaignSpec(name="dup", tasks=tasks)

    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert derive_seed(0, "x") != derive_seed(0, "y")
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_auto_seeded_is_position_independent(self):
        tasks = [Task(id=name, fn="f:g") for name in ("a", "b")]
        spec = CampaignSpec(name="c", tasks=tasks, seed=7)
        seeds = {t.id: t.params["seed"] for t in spec.auto_seeded().tasks}
        reordered = CampaignSpec(name="c", tasks=tasks[::-1], seed=7)
        seeds2 = {t.id: t.params["seed"] for t in reordered.auto_seeded().tasks}
        assert seeds == seeds2

    def test_auto_seeded_respects_explicit_seed(self):
        spec = CampaignSpec(
            name="c", tasks=[Task(id="a", fn="f:g", params={"seed": 42})]
        )
        assert spec.auto_seeded().tasks[0].params["seed"] == 42

    def test_resolve_callable_both_spellings(self):
        assert resolve_callable("os.path:join") is os.path.join
        assert resolve_callable("os.path.join") is os.path.join

    def test_resolve_callable_bad_paths(self):
        with pytest.raises(ValueError):
            resolve_callable("os.path:not_there")
        with pytest.raises(ValueError):
            resolve_callable("no_dots")

    def test_tasks_pickle(self):
        task = Task(id="a", fn="repro.fleet.library:seeded_value",
                    params={"seed": 3})
        assert pickle.loads(pickle.dumps(task)) == task


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k1", {"value": 1.5, "wall_s": 0.1})
        assert cache.get("k1") == {"value": 1.5, "wall_s": 0.1}
        assert "k1" in cache
        assert len(cache) == 1

    def test_miss_and_none_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.get(None) is None
        with pytest.raises(ValueError):
            cache.put(None, {})

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        with open(cache.path("bad"), "w", encoding="utf-8") as fh:
            fh.write("{truncated")
        assert cache.get("bad") is None
        assert "bad" not in cache

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"value": 1})
        cache.clear()
        assert len(cache) == 0


class TestWorker:
    def test_execute_task_returns_value_and_wall_time(self):
        out = execute_task("repro.fleet.library:seeded_value", {"seed": 5})
        assert 0.0 <= out["value"] < 1.0
        assert out["wall_s"] >= 0.0

    def test_in_worker_timeout(self):
        with pytest.raises(TaskTimeout):
            execute_task("repro.fleet.library:sleep_for",
                         {"seconds": 5.0}, timeout_s=0.1)

    def test_per_task_timeout_overrides_default(self):
        from repro.fleet import run_task

        task = Task(id="t", fn="repro.fleet.library:sleep_for",
                    params={"seconds": 0.01}, timeout_s=5.0)
        out = run_task(task, timeout_s=0.001)  # task override wins
        assert out["value"] == 0.01


def _spec(*tasks, name="test"):
    return CampaignSpec(name=name, tasks=tasks)


class TestRunnerSerial:
    def test_values_in_task_order(self):
        spec = _spec(
            Task(id="a", fn="repro.fleet.library:seeded_value",
                 params={"seed": 1}),
            Task(id="b", fn="repro.fleet.library:seeded_value",
                 params={"seed": 2}),
        )
        result = FleetRunner(jobs=1).run(spec)
        assert [r.task_id for r in result.results] == ["a", "b"]
        assert result.ok
        assert result.telemetry.succeeded == 2

    def test_failure_recorded_not_raised(self):
        spec = _spec(
            Task(id="bad", fn="repro.fleet.library:always_fail"),
            Task(id="good", fn="repro.fleet.library:seeded_value",
                 params={"seed": 1}),
        )
        result = FleetRunner(jobs=1, retries=1, backoff_s=0.0).run(spec)
        assert not result.ok
        (failure,) = result.failures
        assert failure.task_id == "bad"
        assert "injected fault" in failure.error
        assert failure.attempts == 2  # first try + one retry
        assert result.value("good") is not None
        with pytest.raises(KeyError):
            result.value("bad")
        with pytest.raises(CampaignError) as err:
            result.raise_on_failure()
        assert err.value.failures == result.failures

    def test_retry_recovers_transient_fault(self, tmp_path):
        marker = str(tmp_path / "marker")
        spec = _spec(
            Task(id="flaky", fn="repro.fleet.library:fail_until_marker",
                 params={"marker": marker, "value": 9.0}),
        )
        result = FleetRunner(jobs=1, retries=2, backoff_s=0.0).run(spec)
        assert result.ok
        assert result.value("flaky") == 9.0
        assert result.results[0].attempts == 2
        assert result.telemetry.retried == 1

    def test_cache_round_trip_and_warm_run(self, tmp_path):
        spec = _spec(
            Task(id="a", fn="repro.fleet.library:seeded_value",
                 params={"seed": 1}),
            Task(id="b", fn="repro.fleet.library:seeded_value",
                 params={"seed": 2}),
        )
        cold = FleetRunner(jobs=1, cache=tmp_path / "c").run(spec)
        warm = FleetRunner(jobs=1, cache=tmp_path / "c").run(spec)
        assert cold.telemetry.executed == 2
        assert warm.telemetry.executed == 0
        assert warm.telemetry.cached == 2
        assert warm.values == cold.values

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetRunner(jobs=0)
        with pytest.raises(ValueError):
            FleetRunner(retries=-1)


class TestRunnerPool:
    def test_parallel_matches_serial(self):
        tasks = [
            Task(id=f"t{i}", fn="repro.fleet.library:seeded_value",
                 params={"seed": i})
            for i in range(12)
        ]
        serial = FleetRunner(jobs=1).run(_spec(*tasks))
        parallel = FleetRunner(jobs=4).run(_spec(*tasks))
        assert serial.values == parallel.values
        assert [r.task_id for r in parallel.results] == [t.id for t in tasks]

    def test_partial_results_with_fault_and_timeout(self):
        spec = _spec(
            Task(id="good", fn="repro.fleet.library:seeded_value",
                 params={"seed": 3}),
            Task(id="bad", fn="repro.fleet.library:always_fail"),
            Task(id="hung", fn="repro.fleet.library:sleep_for",
                 params={"seconds": 30.0}),
        )
        result = FleetRunner(
            jobs=2, retries=1, backoff_s=0.01, timeout_s=0.2
        ).run(spec)
        by_id = {r.task_id: r for r in result.results}
        assert by_id["good"].status == "ok"
        assert by_id["bad"].status == "failed"
        assert by_id["hung"].status == "failed"
        assert "TaskTimeout" in by_id["hung"].error
        assert result.telemetry.failed == 2
        # Hung worker was interrupted in-place, not abandoned: the
        # campaign finished in far less than the task's 30 s sleep.
        assert result.telemetry.wall_s < 10.0

    def test_worker_crash_is_a_recorded_failure(self):
        # os._exit(3) takes the worker process down hard: every attempt
        # surfaces as BrokenProcessPool, the pool is rebuilt, and the
        # task becomes a recorded failure instead of hanging the run.
        spec = _spec(Task(id="boom", fn="os:_exit", payload=(3,)))
        result = FleetRunner(jobs=2, retries=1, backoff_s=0.01).run(spec)
        (failure,) = result.failures
        assert failure.task_id == "boom"
        assert "crash" in failure.error
        # The runner recovered: a fresh campaign on the same settings runs.
        ok = FleetRunner(jobs=2).run(_spec(
            Task(id="fine", fn="repro.fleet.library:seeded_value",
                 params={"seed": 1}),
        ))
        assert ok.ok

    def test_retry_across_processes(self, tmp_path):
        marker = str(tmp_path / "marker")
        spec = _spec(
            Task(id="flaky", fn="repro.fleet.library:fail_until_marker",
                 params={"marker": marker, "value": 4.0}),
        )
        result = FleetRunner(jobs=2, retries=2, backoff_s=0.01).run(spec)
        assert result.ok
        assert result.value("flaky") == 4.0


class TestTelemetry:
    def test_progress_events_and_snapshot(self, tmp_path):
        events = []

        def progress(event, task_id, telemetry, detail=None):
            events.append((event, task_id))

        spec = _spec(
            Task(id="a", fn="repro.fleet.library:seeded_value",
                 params={"seed": 1}),
            Task(id="bad", fn="repro.fleet.library:always_fail"),
        )
        runner = FleetRunner(jobs=1, retries=1, backoff_s=0.0,
                             cache=tmp_path, progress=progress)
        result = runner.run(spec)
        assert ("ok", "a") in events
        assert ("retry", "bad") in events
        assert ("failed", "bad") in events
        snap = result.telemetry.snapshot()
        assert snap["total"] == 2
        assert snap["succeeded"] == 1
        assert snap["failed"] == 1
        assert "fleet: 2 tasks" in result.telemetry.render()

        warm = FleetRunner(jobs=1, cache=tmp_path, progress=progress)
        events.clear()
        warm_result = warm.run(_spec(spec.tasks[0]))
        assert events == [("cached", "a")]
        assert warm_result.telemetry.cached == 1
