"""Tests for the headline-report module and CLI command."""

import pytest

from repro.cli import main
from repro.experiments import full_report, render_report
from repro.experiments.summary import fidelity_summary, goal_summary


class TestFidelitySummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return fidelity_summary()

    def test_covers_all_four_applications(self, summary):
        assert set(summary) == {"video", "speech", "map", "web"}

    def test_bands_are_ordered(self, summary):
        for app, bands in summary.items():
            for key in ("hw-only", "lowest"):
                lo, hi = bands[key]
                assert lo <= hi, (app, key)

    def test_lowest_beats_hw_only(self, summary):
        for app, bands in summary.items():
            assert bands["lowest"][1] > bands["hw-only"][0], app

    def test_savings_are_positive_fractions(self, summary):
        for bands in summary.values():
            for lo, hi in bands.values():
                assert -0.05 <= lo <= hi <= 0.95


class TestGoalSummary:
    def test_goal_summary_structure_and_success(self):
        summary = goal_summary(initial_energy=4_000.0)
        assert summary["bound_low_fidelity"] > summary["bound_high_fidelity"]
        assert len(summary["goals"]) == 3
        for outcome in summary["goals"]:
            assert outcome["met"]
            assert outcome["residual"] >= 0.0


class TestFullReport:
    def test_subsets_selectable(self):
        report = full_report(include_concurrency=False, include_goal=False)
        assert "fidelity" in report
        assert "concurrency" not in report
        assert "goal" not in report

    def test_render_contains_key_rows(self):
        report = full_report(include_concurrency=False, include_goal=False)
        text = render_report(report)
        assert "video" in text and "speech" in text
        assert "paper" in text

    def test_cli_report_command(self, capsys):
        code = main(["report", "--no-goal", "--no-concurrency"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Reproduction headline report" in out
        assert "web" in out
