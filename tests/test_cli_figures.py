"""CLI figure-table commands (fig06/fig08 routes not covered elsewhere)."""

import pytest

from repro.cli import main


class TestFigureCommands:
    def test_fig06_prints_all_bars(self, capsys):
        code = main(["fig06"])
        out = capsys.readouterr().out
        assert code == 0
        for config in ("baseline", "hw-only", "premiere-b", "premiere-c",
                       "reduced-window", "combined"):
            assert config in out
        for clip in ("video-1", "video-2", "video-3", "video-4"):
            assert clip in out

    def test_fig08_prints_all_strategies(self, capsys):
        code = main(["fig08"])
        out = capsys.readouterr().out
        assert code == 0
        for config in ("baseline", "hw-only", "reduced", "remote",
                       "hybrid", "remote-reduced", "hybrid-reduced"):
            assert config in out

    def test_fig10_think_time_flag(self, capsys, tmp_path):
        path = tmp_path / "fig10.csv"
        code = main(["fig10", "--think", "0", "--csv", str(path)])
        assert code == 0
        text = path.read_text()
        assert text.startswith("config,")
        assert "crop-secondary" in text

    def test_goal_no_chart_flag(self, capsys):
        code = main(["goal", "--energy", "3000", "--no-chart"])
        out = capsys.readouterr().out
        assert code == 0
        assert "supply vs predicted demand" not in out

    def test_goal_chart_rendered_by_default(self, capsys):
        code = main(["goal", "--energy", "3000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "supply vs predicted demand" in out
        assert "demand" in out
