"""Tests for FleetTelemetry edge cases and the TTY-aware ProgressPrinter."""

import io

from repro.fleet import FleetTelemetry, ProgressPrinter


class TestSpeedupEstimate:
    def test_normal_ratio(self):
        telemetry = FleetTelemetry(total=4, succeeded=4,
                                   busy_s=8.0, wall_s=2.0)
        assert telemetry.speedup_estimate == 4.0

    def test_sub_millisecond_wall_reports_no_speedup(self):
        # A cache-dominated campaign finishes in microseconds; dividing
        # busy time by that produces absurd "speedups".
        telemetry = FleetTelemetry(total=4, succeeded=1,
                                   busy_s=5.0, wall_s=5e-4)
        assert telemetry.speedup_estimate == 0.0

    def test_zero_wall_reports_no_speedup(self):
        assert FleetTelemetry(busy_s=5.0, wall_s=0.0).speedup_estimate == 0.0


class TestFromCache:
    def test_all_cached_is_from_cache(self):
        telemetry = FleetTelemetry(total=3, cached=3, wall_s=1e-5)
        assert telemetry.from_cache
        line = telemetry.render()
        assert "(from cache)" in line
        assert "speedup" not in line

    def test_mixed_run_is_not_from_cache(self):
        telemetry = FleetTelemetry(total=3, cached=2, succeeded=1,
                                   busy_s=1.0, wall_s=0.5)
        assert not telemetry.from_cache
        assert "speedup" in telemetry.render()

    def test_empty_run_is_not_from_cache(self):
        assert not FleetTelemetry(total=0).from_cache

    def test_short_executed_run_omits_speedup_but_keeps_busy(self):
        telemetry = FleetTelemetry(total=1, succeeded=1,
                                   busy_s=0.0004, wall_s=0.0005)
        line = telemetry.render()
        assert "busy" in line
        assert "speedup" not in line

    def test_snapshot_includes_derived_fields(self):
        telemetry = FleetTelemetry(total=2, cached=2, wall_s=1e-5)
        snap = telemetry.snapshot()
        assert snap["from_cache"] is True
        assert snap["speedup_estimate"] == 0.0
        assert snap["total"] == 2


class _TtyStream(io.StringIO):
    def isatty(self):
        return True


class TestProgressPrinter:
    def test_non_tty_prints_full_lines(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        telemetry = FleetTelemetry(total=2)
        telemetry.succeeded = 1
        printer("ok", "a", telemetry, "0.1s")
        telemetry.succeeded = 2
        printer("ok", "b", telemetry)
        printer.close()  # no-op off-TTY
        output = stream.getvalue()
        assert output == "[1/2] ok a (0.1s)\n[2/2] ok b\n"
        assert "\r" not in output

    def test_tty_rewrites_in_place(self):
        stream = _TtyStream()
        printer = ProgressPrinter(stream=stream)
        telemetry = FleetTelemetry(total=2)
        telemetry.succeeded = 1
        printer("ok", "a", telemetry)
        telemetry.succeeded = 2
        printer("ok", "b", telemetry)
        output = stream.getvalue()
        assert output.count("\r") == 2
        assert "\n" not in output
        printer.close()
        assert stream.getvalue().endswith("[2/2] ok b\n")

    def test_close_idempotent(self):
        stream = _TtyStream()
        printer = ProgressPrinter(stream=stream)
        printer("ok", "a", FleetTelemetry(total=1), None)
        printer.close()
        printer.close()
        assert stream.getvalue().count("\n") == 1

    def test_stream_without_isatty_treated_as_non_tty(self):
        class Bare:
            def __init__(self):
                self.lines = []

            def write(self, text):
                self.lines.append(text)

            def flush(self):
                pass

        stream = Bare()
        printer = ProgressPrinter(stream=stream)
        printer("ok", "a", FleetTelemetry(total=1), None)
        assert any("ok a" in chunk for chunk in stream.lines)
        assert not any("\r" in chunk for chunk in stream.lines)
