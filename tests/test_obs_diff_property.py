"""Property-based tests for trace-diff alignment.

Seeded random decision spines (plain ``random.Random`` — deterministic,
no external dependency) exercise the alignment invariants the golden
suite relies on:

* a spine diffed against itself is empty;
* window boundaries are symmetric in the argument order (and energy
  deltas negate);
* a single perturbed decision yields exactly one single-decision
  window at exactly that id.
"""

import random

import pytest

from repro.obs.diff import SpineEntry, diff_spines

ACTIONS = ("hold", "degrade", "upgrade")
APPS = ("speech", "video", "map", "web")
LEVELS = ("a", "b", "c")


def random_spine(rng, length=None):
    length = rng.randint(5, 60) if length is None else length
    spine = []
    for index in range(length):
        did = index + 1
        action = rng.choice(ACTIONS)
        upcalls = []
        if action != "hold" and rng.random() < 0.5:
            upcalls.append(
                (action, rng.choice(APPS), rng.choice(LEVELS))
            )
        spine.append(
            SpineEntry(did, 0.5 * did, action, upcalls,
                       infeasible=(rng.random() < 0.02))
        )
    return spine


def copy_spine(spine):
    return [SpineEntry(e.did, e.ts, e.action, e.upcalls, e.infeasible)
            for e in spine]


@pytest.mark.parametrize("seed", range(25))
def test_self_diff_is_empty(seed):
    spine = random_spine(random.Random(seed))
    diff = diff_spines(spine, copy_spine(spine))
    assert diff.identical
    assert diff.windows == []
    assert diff.divergent_decisions == 0


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("gap", [0, 2])
def test_window_boundaries_are_symmetric(seed, gap):
    rng = random.Random(seed)
    a = random_spine(rng)
    b = random_spine(rng)
    forward = diff_spines(a, b, gap=gap)
    backward = diff_spines(b, a, gap=gap)
    bounds = lambda d: [(w.start_did, w.end_did, w.t0, w.t1)
                        for w in d.windows]
    assert bounds(forward) == bounds(backward)
    assert forward.divergent_decisions == backward.divergent_decisions


@pytest.mark.parametrize("seed", range(25))
def test_single_perturbation_yields_exactly_one_window(seed):
    rng = random.Random(seed)
    spine = random_spine(rng)
    perturbed = copy_spine(spine)
    victim = rng.randrange(len(perturbed))
    entry = perturbed[victim]
    # Replace the action with a different one; clearing upcalls keeps
    # the entry self-consistent when flipping to "hold".
    new_action = rng.choice([a for a in ACTIONS if a != entry.action])
    perturbed[victim] = SpineEntry(
        entry.did, entry.ts, new_action, (), entry.infeasible
    )
    diff = diff_spines(spine, perturbed)
    assert len(diff.windows) == 1
    window = diff.windows[0]
    assert window.start_did == window.end_did == entry.did
    assert diff.divergent_decisions == 1
    assert window.t0 == entry.ts


@pytest.mark.parametrize("seed", range(10))
def test_truncation_yields_one_trailing_window(seed):
    rng = random.Random(seed)
    spine = random_spine(rng, length=rng.randint(10, 40))
    cut = rng.randint(1, len(spine) - 1)
    diff = diff_spines(spine, copy_spine(spine)[:cut])
    assert len(diff.windows) == 1
    window = diff.windows[0]
    assert window.start_did == cut + 1
    assert window.end_did == len(spine)
    assert window.entries_b == []
