"""Window-edge and upcall-loop tests for the expectations API (Section 2.2)."""

import pytest

from repro.core.expectations import (
    ExpectationError,
    ExpectationMonitor,
    ExpectationRegistry,
    ResourceWindow,
)
from repro.obs import Tracer
from repro.sim import Simulator


class TestResourceWindow:
    def test_bounds_are_inclusive(self):
        window = ResourceWindow(10.0, 20.0)
        assert window.contains(10.0)
        assert window.contains(20.0)
        assert window.contains(15.0)
        assert not window.contains(9.999)
        assert not window.contains(20.001)

    def test_degenerate_point_window(self):
        window = ResourceWindow(5.0, 5.0)
        assert window.contains(5.0)
        assert not window.contains(5.1)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ExpectationError):
            ResourceWindow(-1.0, 5.0)
        with pytest.raises(ExpectationError):
            ResourceWindow(10.0, 5.0)


class TestRegistry:
    def test_violation_delivers_upcall_and_reregisters(self):
        registry = ExpectationRegistry("bandwidth")
        seen = []

        def upcall(level, window):
            seen.append((level, window))
            return ResourceWindow(0.0, level * 2)

        registry.register("app", ResourceWindow(100.0, 200.0), upcall)
        assert registry.check(50.0) == ["app"]
        assert seen == [(50.0, ResourceWindow(100.0, 200.0))]
        # The upcall's returned window is now the active expectation.
        assert registry.window_of("app") == ResourceWindow(0.0, 100.0)
        assert registry.check(50.0) == []
        assert registry.upcalls_delivered == 1

    def test_upcall_returning_none_keeps_window(self):
        registry = ExpectationRegistry("bandwidth")
        registry.register("app", ResourceWindow(100.0, 200.0),
                          lambda level, window: None)
        registry.check(50.0)
        registry.check(50.0)
        assert registry.window_of("app") == ResourceWindow(100.0, 200.0)
        assert registry.upcalls_delivered == 2

    def test_upcall_returning_junk_raises(self):
        registry = ExpectationRegistry("bandwidth")
        registry.register("app", ResourceWindow(100.0, 200.0),
                          lambda level, window: "not a window")
        with pytest.raises(ExpectationError):
            registry.check(50.0)

    def test_register_requires_window_type(self):
        registry = ExpectationRegistry("bandwidth")
        with pytest.raises(ExpectationError):
            registry.register("app", (0.0, 1.0), lambda level, window: None)

    def test_level_on_edge_is_not_a_violation(self):
        registry = ExpectationRegistry("bandwidth")
        registry.register("app", ResourceWindow(100.0, 200.0),
                          lambda level, window: None)
        assert registry.check(100.0) == []
        assert registry.check(200.0) == []

    def test_unregister_stops_upcalls(self):
        registry = ExpectationRegistry("bandwidth")
        registry.register("app", ResourceWindow(100.0, 200.0),
                          lambda level, window: None)
        registry.unregister("app")
        assert registry.check(0.0) == []
        assert registry.window_of("app") is None


class TestMonitor:
    def test_invalid_period_rejected(self):
        sim = Simulator()
        registry = ExpectationRegistry("bandwidth")
        with pytest.raises(ExpectationError):
            ExpectationMonitor(sim, registry, lambda: 1.0, period=0.0)

    def test_checks_on_cadence_until_stopped(self):
        sim = Simulator()
        registry = ExpectationRegistry("bandwidth")
        monitor = ExpectationMonitor(sim, registry, lambda: 150.0, period=1.0)
        registry.register("app", ResourceWindow(100.0, 200.0),
                          lambda level, window: None)
        monitor.start()
        sim.schedule(5.5, lambda _t: monitor.stop())
        sim.run(until=10.0)
        assert monitor.checks == 5  # ticks at 1..5; stop at 5.5 ends it

    def test_none_level_skips_check(self):
        sim = Simulator()
        registry = ExpectationRegistry("bandwidth")
        monitor = ExpectationMonitor(sim, registry, lambda: None, period=1.0)
        monitor.start()
        sim.run(until=3.5)
        assert monitor.checks == 0

    def test_double_start_schedules_once(self):
        sim = Simulator()
        registry = ExpectationRegistry("bandwidth")
        monitor = ExpectationMonitor(sim, registry, lambda: 1.0, period=1.0)
        monitor.start()
        monitor.start()
        sim.run(until=2.5)
        assert monitor.checks == 2

    def test_violations_traced(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        registry = ExpectationRegistry("bandwidth")
        monitor = ExpectationMonitor(sim, registry, lambda: 10.0, period=1.0)
        registry.register("app", ResourceWindow(100.0, 200.0),
                          lambda level, window: None)
        monitor.start()
        sim.run(until=2.5)
        violations = [e for e in tracer.events
                      if e.name == "expectation.violation"]
        assert len(violations) == 2
        assert violations[0].args["application"] == "app"
        assert violations[0].args["resource"] == "bandwidth"
        assert violations[0].args["level"] == 10.0
