"""Property-based tests (hypothesis) on core data structures and
invariants: energy conservation, ladder bounds, smoothing behavior,
trigger monotonicity, zone geometry, and event ordering."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fit_linear, normalize_to_baseline, summarize
from repro.core import (
    AdaptationTrigger,
    DemandPredictor,
    EnergySupply,
    FidelityLadder,
    alpha_for_halflife,
)
from repro.hardware import ExternalSupply, Machine, PowerComponent, Rect, ZonedDisplay
from repro.sim import Simulator

# ----------------------------------------------------------------------
# simulator
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda t: fired.append(t))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=20
    )
)
def test_sequential_timeouts_accumulate_exactly(durations):
    sim = Simulator()
    done = []

    def proc():
        for d in durations:
            yield sim.timeout(d)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done and math.isclose(done[0], sum(durations), rel_tol=1e-9)


# ----------------------------------------------------------------------
# fidelity ladder
# ----------------------------------------------------------------------


@given(
    levels=st.integers(min_value=1, max_value=10),
    walk=st.lists(st.booleans(), max_size=100),
)
def test_ladder_walk_invariants(levels, walk):
    ladder = FidelityLadder("x", [f"l{i}" for i in range(levels)])
    transitions = 0
    for step_up in walk:
        if step_up and not ladder.at_top:
            ladder.upgrade()
            transitions += 1
        elif not step_up and not ladder.at_bottom:
            ladder.degrade()
            transitions += 1
        assert 0 <= ladder.index < levels
        assert 0.0 <= ladder.normalized() <= 1.0
        assert ladder.current == ladder.levels[ladder.index]
    assert ladder.transitions == transitions


# ----------------------------------------------------------------------
# energy integration and attribution
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=50.0),  # segment duration
            st.floats(min_value=0.0, max_value=30.0),   # power level
        ),
        min_size=1,
        max_size=30,
    )
)
def test_piecewise_constant_integration_is_exact(segments):
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    states = {f"s{i}": watts for i, (_d, watts) in enumerate(segments)}
    states["start"] = segments[0][1]
    comp = machine.attach(PowerComponent("load", states, "start"))
    expected = 0.0
    for i, (duration, watts) in enumerate(segments):
        comp.set_state(f"s{i}")
        sim.run(until=sim.now + duration)
        expected += watts * duration
    machine.advance()
    assert math.isclose(machine.energy_total, expected, rel_tol=1e-9, abs_tol=1e-9)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", None]),     # context process
            st.floats(min_value=0.01, max_value=10.0),  # duration
        ),
        min_size=1,
        max_size=25,
    )
)
def test_attribution_conserves_energy(timeline):
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("load", {"on": 7.0}, "on"))
    for process, duration in timeline:
        token = None
        if process is not None:
            token = machine.push_context(process, "proc")
        sim.run(until=sim.now + duration)
        if token is not None:
            machine.pop_context(token)
    report = machine.energy_report()
    assert math.isclose(
        sum(report.values()), machine.energy_total, rel_tol=1e-9
    )
    # Procedure-level detail also sums to the total.
    assert math.isclose(
        sum(machine.energy_by_procedure.values()),
        machine.energy_total,
        rel_tol=1e-9,
    )


@given(
    fraction=st.floats(min_value=0.0, max_value=1.0),
    duration=st.floats(min_value=0.1, max_value=100.0),
)
def test_overlay_split_is_exact(fraction, duration):
    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("load", {"on": 4.0}, "on"))
    machine.add_overlay(fraction, "interrupts")
    sim.run(until=duration)
    report = machine.energy_report()
    total = machine.energy_total
    assert math.isclose(
        report.get("interrupts", 0.0), total * fraction, rel_tol=1e-9, abs_tol=1e-9
    )


# ----------------------------------------------------------------------
# supply / demand / trigger
# ----------------------------------------------------------------------


@given(
    initial=st.floats(min_value=1.0, max_value=1e6),
    samples=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        max_size=50,
    ),
)
def test_supply_residual_accounting(initial, samples):
    supply = EnergySupply(initial)
    consumed = 0.0
    for watts, dt in samples:
        supply.on_sample(0.0, watts, dt)
        consumed += watts * dt
    assert math.isclose(supply.residual, initial - consumed, rel_tol=1e-9, abs_tol=1e-6)


@given(
    halflife=st.floats(min_value=0.001, max_value=1e5),
    dt=st.floats(min_value=0.001, max_value=100.0),
)
def test_alpha_bounds_and_halving(halflife, dt):
    alpha = alpha_for_halflife(halflife, dt)
    assert 0.0 <= alpha < 1.0
    # After one half-life of samples the old weight is exactly halved
    # (checked where 0.5**(dt/halflife) is numerically representable).
    steps = halflife / dt
    if alpha > 0.0:
        assert math.isclose(alpha**steps, 0.5, rel_tol=1e-6)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=200)
)
def test_smoothed_estimate_stays_within_sample_range(samples):
    predictor = DemandPredictor(halflife_fraction=0.10)
    for watts in samples:
        predictor.update(watts, dt=0.1, time_remaining=500.0)
    assert min(samples) - 1e-9 <= predictor.smoothed_watts <= max(samples) + 1e-9


@given(
    initial=st.floats(min_value=1.0, max_value=1e6),
    residual=st.floats(min_value=0.0, max_value=1e6),
    demand=st.floats(min_value=0.0, max_value=1e6),
)
def test_trigger_decisions_are_consistent(initial, residual, demand):
    trigger = AdaptationTrigger(initial)
    decision = trigger.decide(demand, residual)
    if demand > residual:
        assert decision == "degrade"
    else:
        assert decision in ("upgrade", "hold")
        if decision == "upgrade":
            # Upgrades require clearing the full hysteresis margin.
            assert residual - demand > trigger.upgrade_margin(residual)


@given(
    initial=st.floats(min_value=1.0, max_value=1e5),
    residual=st.floats(min_value=0.0, max_value=1e5),
    demand=st.floats(min_value=0.0, max_value=1e5),
    less=st.floats(min_value=0.0, max_value=1.0),
)
def test_trigger_upgrade_monotone_in_demand(initial, residual, demand, less):
    """If demand d allows an upgrade, any smaller demand does too."""
    trigger = AdaptationTrigger(initial)
    if trigger.decide(demand, residual) == "upgrade":
        assert trigger.decide(demand * less, residual) == "upgrade"


# ----------------------------------------------------------------------
# zone geometry
# ----------------------------------------------------------------------


@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    x=st.floats(min_value=0, max_value=799),
    y=st.floats(min_value=0, max_value=599),
    w=st.floats(min_value=1, max_value=800),
    h=st.floats(min_value=1, max_value=600),
)
def test_zone_occupancy_properties(rows, cols, x, y, w, h):
    display = ZonedDisplay(4.0, 2.0, rows, cols, width=800, height=600)
    rect = Rect(x, y, min(w, 800 - x), min(h, 600 - y))
    if rect.area == 0:
        return
    zones = display.zones_for(rect)
    # A window on screen always touches at least one zone.
    assert zones
    # Zone indices are valid and unique.
    assert len(set(zones)) == len(zones)
    assert all(0 <= z < rows * cols for z in zones)
    # Lighting only those zones never draws more than the full panel.
    lit = display.illuminate([rect], background=ZonedDisplay.OFF)
    assert lit == len(zones)
    assert display.power <= 4.0 + 1e-9


@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
)
def test_zone_rects_tile_the_screen(rows, cols):
    display = ZonedDisplay(4.0, 2.0, rows, cols, width=800, height=600)
    total_area = sum(display.zone_rect(i).area for i in range(rows * cols))
    assert math.isclose(total_area, 800 * 600, rel_tol=1e-9)


# ----------------------------------------------------------------------
# analysis helpers
# ----------------------------------------------------------------------


@given(
    slope=st.floats(min_value=-100, max_value=100),
    intercept=st.floats(min_value=-1000, max_value=1000),
)
def test_linear_fit_recovers_exact_line(slope, intercept):
    xs = [0.0, 5.0, 10.0, 20.0]
    ys = [intercept + slope * x for x in xs]
    fit = fit_linear(xs, ys)
    assert math.isclose(fit.slope, slope, rel_tol=1e-6, abs_tol=1e-6)
    assert math.isclose(fit.intercept, intercept, rel_tol=1e-6, abs_tol=1e-6)
    assert fit.r_squared > 0.999999 or math.isclose(slope, 0.0, abs_tol=1e-9)


@given(
    st.dictionaries(
        st.sampled_from(["o1", "o2", "o3"]),
        st.floats(min_value=1.0, max_value=1e4),
        min_size=1,
    )
)
def test_normalization_baseline_is_unity(baseline_row):
    table = {"baseline": baseline_row,
             "other": {k: v * 0.5 for k, v in baseline_row.items()}}
    normalized = normalize_to_baseline(table)
    for value in normalized["baseline"].values():
        assert math.isclose(value, 1.0, rel_tol=1e-9)
    for value in normalized["other"].values():
        assert math.isclose(value, 0.5, rel_tol=1e-9)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=30)
)
def test_summarize_mean_within_bounds(values):
    stats = summarize(values)
    assert min(values) - 1e-6 <= stats.mean <= max(values) + 1e-6
    assert stats.ci90 >= 0.0
    assert stats.n == len(values)


@settings(max_examples=25)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=5.0),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=2,
        max_size=10,
    )
)
def test_resource_serves_fifo_under_random_load(jobs):
    from repro.sim import Resource

    sim = Simulator()
    cpu = Resource(sim, capacity=1)
    order = []

    def worker(tag, duration, delay):
        yield sim.timeout(delay * 0.001)  # stagger arrivals slightly
        yield from cpu.use(duration, owner=tag)
        order.append(tag)

    arrival = []
    for i, (duration, delay_bucket) in enumerate(jobs):
        sim.spawn(worker(i, duration, i))
        arrival.append(i)
    sim.run()
    # With strictly staggered arrivals, completion order == arrival order.
    assert order == arrival
