"""Whole-system integration tests crossing subsystem boundaries."""

import pytest

from repro.core import (
    DiskCache,
    ExpectationMonitor,
    ExpectationRegistry,
    Odyssey,
)
from repro.experiments import build_goal_rig, build_rig
from repro.experiments.goal_study import _spawn_workload
from repro.hardware import Battery, ZonedDisplay
from repro.apps import ZonedWindowManager
from repro.net import BandwidthEstimator
from repro.powerscope import Multimeter, SystemMonitor, correlate
from repro.workloads import MAPS, SessionTrace
from repro.workloads.videos import VideoClip


class TestMultiResourceAdaptation:
    def test_energy_goal_and_bandwidth_adaptation_together(self):
        """Both adaptation loops drive the same video player: the
        bandwidth loop caps the track to what the degraded link can
        carry while the energy controller still meets its goal."""
        # Note the slack: degrading the link to 1 Mb/s raises the energy
        # cost of every fetch (slower transfers at receive power), so
        # the goal must stay feasible under the *degraded* network.
        initial_energy = 4_000.0
        goal_seconds = 255.0
        rig, odyssey, battery = build_goal_rig(initial_energy)
        controller = odyssey.set_goal(initial_energy, goal_seconds)
        _spawn_workload(rig, horizon=500.0)

        player = rig.apps["video"]
        clip = VideoClip("dual", 60.0, 12.0, 16_250)
        estimator = BandwidthEstimator(rig.link, gain=0.5)
        registry = ExpectationRegistry("bandwidth")
        registry.register(
            "video",
            player.bandwidth_window(clip, player.fidelity),
            player.bandwidth_upcall(clip),
        )
        monitor = ExpectationMonitor(
            rig.sim, registry, lambda: estimator.estimate_bps, period=1.0
        )
        monitor.start()
        odyssey.start()
        # The link degrades partway through.
        rig.sim.schedule(60.0, lambda t: rig.link.set_bandwidth(1.0e6))
        # Sample whether the track fit the link, after every monitor
        # check from t=70 on (giving the estimator one transfer to see
        # the new bandwidth).  The energy controller may briefly
        # upgrade past the cap; the bandwidth loop must re-correct.
        fits = []

        def sample(_t):
            fits.append(clip.bitrate_bps(player.track) <= 1.0e6 / 0.8)
            if rig.sim.now < goal_seconds - 10.0:
                rig.sim.schedule(5.0, sample)

        rig.sim.schedule(80.0, sample)

        while rig.sim.now < goal_seconds and not battery.exhausted:
            if not rig.sim.step():
                break
        assert not battery.exhausted
        # The bandwidth loop delivered corrections and kept the track
        # within the link's capacity the vast majority of the time.
        assert registry.upcalls_delivered >= 1
        assert fits and sum(fits) / len(fits) >= 0.8

    def test_powerscope_profiles_goal_directed_run(self):
        """The offline profiler and the online controller coexist: the
        profile's total matches the energy the controller accounted."""
        initial_energy = 3_000.0
        rig, odyssey, battery = build_goal_rig(initial_energy)
        controller = odyssey.set_goal(initial_energy, 190.0)
        _spawn_workload(rig, horizon=400.0)
        monitor = SystemMonitor(rig.machine)
        meter = Multimeter(rig.machine, rate_hz=200.0, monitor=monitor)
        odyssey.start()
        meter.start()
        rig.sim.run(until=100.0)
        meter.stop()
        rig.machine.advance()
        profile = correlate(
            meter.samples, monitor.samples, rig.machine.voltage,
            period=meter.period,
        )
        assert profile.total_energy == pytest.approx(
            rig.machine.energy_total, rel=0.02
        )
        # The controller's belief agrees with the profiler's view.
        assert controller.supply.consumed == pytest.approx(
            profile.total_energy, rel=0.05
        )


class TestZonedPlaybackIntegration:
    def test_window_manager_relights_as_video_adapts(self):
        rig = build_rig(pm_enabled=True, zoned=(2, 4))
        display = rig.machine["display"]
        mgr = ZonedWindowManager(display, peripheral_level=ZonedDisplay.OFF)
        player = rig.apps["video"]
        mgr.place("video", player.window_rect(), snap=False)
        full_power = display.power

        clip = VideoClip("zoned-int", 10.0, 12.0, 16_250)
        proc = rig.sim.spawn(player.play(clip))
        # Mid-playback, the energy controller would shrink the window;
        # simulate the upcall and let the window manager relight.
        def shrink(_t):
            player.set_fidelity("combined")
            mgr.place("video", player.window_rect(), snap=False)

        rig.sim.schedule(5.0, shrink)
        rig.run_until_complete(proc)
        assert display.power <= full_power
        bright, _dim = mgr.zones_lit()
        assert bright == 1  # the reduced window fits one 2x4 zone

    def test_snap_to_reduces_playback_energy(self):
        """A straddling video window costs more zones; snap-to pays for
        itself in display energy over a playback."""

        def play(snap):
            rig = build_rig(pm_enabled=True, zoned=(2, 2))
            display = rig.machine["display"]
            mgr = ZonedWindowManager(
                display, max_snap=80, peripheral_level=ZonedDisplay.OFF
            )
            player = rig.apps["video"]
            # Straddles all 4 zones, but within snap range of zone 1.
            player.window_origin = (340, 130)
            mgr.place("video", player.window_rect(), snap=snap)
            clip = VideoClip("snap-int", 8.0, 12.0, 16_250)
            proc = rig.sim.spawn(player.play(clip))
            return rig.run_until_complete(proc)

        assert play(snap=True) < play(snap=False)


class TestCachedTraceReplay:
    def test_cached_replay_of_repeating_session_saves_energy(self):
        session = "\n".join(
            f"{i * 12.0} map {MAPS[0].name}" for i in range(4)
        )

        def replay(with_cache):
            rig = build_rig(pm_enabled=True)
            if with_cache:
                cache = DiskCache(
                    rig.machine, 50_000_000,
                    power_manager=rig.power_manager,
                )
                warden = rig.wardens["map"]
                original = warden.fetch_map

                def cached_fetch(city, fidelity):
                    nbytes, _hit = yield from cache.fetch_through(
                        (city.name, fidelity),
                        lambda: original(city, fidelity),
                    )
                    return nbytes

                warden.fetch_map = cached_fetch
            trace = SessionTrace.parse(session)
            proc = rig.sim.spawn(trace.replay(rig))
            return rig.run_until_complete(proc)

        assert replay(with_cache=True) < replay(with_cache=False)


class TestGaugeWithNonIdealBattery:
    def test_coarse_gauge_and_peukert_battery_still_meet_midrange_goal(self):
        from repro.experiments import (
            derive_goals,
            fidelity_runtime_bounds,
            run_goal_experiment,
        )
        from repro.hardware import PeukertBattery
        from repro.powerscope import SmartBatteryGauge

        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goal = derive_goals(t_hi, t_lo, count=3)[1]
        result = run_goal_experiment(
            goal,
            initial_energy=energy,
            supply=PeukertBattery(energy, rated_power_w=14.0, exponent=1.02),
            monitor_factory=lambda machine: SmartBatteryGauge(
                machine, period=1.0, resolution_w=0.25
            ),
        )
        # The coarse gauge + battery non-ideality cost at most a sliver.
        assert result.survived_seconds >= 0.985 * goal
