"""Tests for energy-profile comparison."""

import pytest

from repro.powerscope import EnergyProfile, diff_profiles, render_diff


def make_profile(entries):
    profile = EnergyProfile()
    for process, joules in entries.items():
        profile.record(process, "main", seconds=1.0, joules=joules)
    profile.elapsed = 10.0
    return profile


class TestDiffProfiles:
    def test_deltas_computed_per_process(self):
        before = make_profile({"xanim": 100.0, "X": 50.0})
        after = make_profile({"xanim": 60.0, "X": 50.0})
        deltas = {d.process: d for d in diff_profiles(before, after)}
        assert deltas["xanim"].delta_joules == pytest.approx(-40.0)
        assert deltas["xanim"].relative == pytest.approx(-0.4)
        assert deltas["X"].delta_joules == pytest.approx(0.0)

    def test_sorted_by_absolute_change(self):
        before = make_profile({"a": 100.0, "b": 10.0, "c": 50.0})
        after = make_profile({"a": 95.0, "b": 40.0, "c": 50.0})
        order = [d.process for d in diff_profiles(before, after)]
        assert order[0] == "b"  # +30 beats -5

    def test_new_process_has_no_relative(self):
        before = make_profile({"a": 10.0})
        after = make_profile({"a": 10.0, "newcomer": 5.0})
        deltas = {d.process: d for d in diff_profiles(before, after)}
        assert deltas["newcomer"].relative is None
        assert deltas["newcomer"].delta_joules == pytest.approx(5.0)

    def test_vanished_process_delta_negative(self):
        before = make_profile({"a": 10.0, "gone": 7.0})
        after = make_profile({"a": 10.0})
        deltas = {d.process: d for d in diff_profiles(before, after)}
        assert deltas["gone"].delta_joules == pytest.approx(-7.0)


class TestRenderDiff:
    def test_render_contains_totals_and_processes(self):
        before = make_profile({"xanim": 100.0})
        after = make_profile({"xanim": 60.0})
        text = render_diff(before, after)
        assert "xanim" in text
        assert "Total" in text
        assert "-40" in text.replace(" ", "") or "-40.0" in text

    def test_render_marks_new_processes(self):
        before = make_profile({"a": 10.0})
        after = make_profile({"a": 10.0, "fresh": 3.0})
        assert "new" in render_diff(before, after)


class TestEndToEndDiff:
    def test_fidelity_reduction_shows_in_diff(self):
        """Profile baseline vs combined video and confirm the diff
        points at Xanim (decode) and X (window area) — exactly the
        attribution story of the paper's Figure 6."""
        from repro.experiments import build_rig
        from repro.powerscope import profile_run
        from repro.workloads.videos import VideoClip

        def profiled(level):
            rig = build_rig(pm_enabled=True)
            player = rig.apps["video"]
            player.set_fidelity(level)
            clip = VideoClip("diff-clip", 10.0, 12.0, 16_250)
            rig.sim.spawn(player.play(clip))
            return profile_run(rig.machine, until=10.0)

        before = profiled("baseline")
        after = profiled("combined")
        deltas = {d.process: d for d in diff_profiles(before, after)}
        assert deltas["xanim"].delta_joules < 0
        assert deltas["X"].delta_joules < 0
        assert after.total_energy < before.total_energy
