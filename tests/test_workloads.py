"""Tests for workload descriptors."""

import pytest

from repro.workloads import (
    BurstySchedule,
    FixedThinkTime,
    IMAGES,
    MAPS,
    RandomThinkTime,
    SPEECH_MODELS,
    UTTERANCES,
    VIDEO_CLIPS,
    clip_by_name,
    generate_schedules,
    image_by_name,
    map_by_name,
    utterance_by_name,
)


class TestVideoClips:
    def test_four_clips_in_paper_duration_range(self):
        assert len(VIDEO_CLIPS) == 4
        for clip in VIDEO_CLIPS:
            assert 127.0 <= clip.duration_s <= 226.0

    def test_baseline_bitrate_under_link_capacity(self):
        """The 2 Mb/s WaveLAN must carry the baseline stream."""
        for clip in VIDEO_CLIPS:
            assert clip.bitrate_bps("baseline") < 2e6

    def test_baseline_nearly_saturates_link(self):
        """Paper: playback is network-limited at baseline fidelity."""
        for clip in VIDEO_CLIPS:
            assert clip.bitrate_bps("baseline") > 0.6 * 2e6

    def test_tracks_ordered_by_compression(self):
        for clip in VIDEO_CLIPS:
            assert (
                clip.track_bytes("premiere-c")
                < clip.track_bytes("premiere-b")
                < clip.track_bytes("baseline")
            )

    def test_frame_count(self):
        clip = VIDEO_CLIPS[0]
        assert clip.frame_count == int(clip.duration_s * clip.fps)

    def test_unknown_track_rejected(self):
        with pytest.raises(KeyError):
            VIDEO_CLIPS[0].track_bytes("mystery")

    def test_lookup_by_name(self):
        assert clip_by_name("video-2").name == "video-2"
        with pytest.raises(KeyError):
            clip_by_name("video-9")


class TestUtterances:
    def test_four_utterances_in_paper_length_range(self):
        assert len(UTTERANCES) == 4
        for utt in UTTERANCES:
            assert 1.0 <= utt.duration_s <= 7.0

    def test_reduced_model_is_faster(self):
        for utt in UTTERANCES:
            assert utt.recognition_seconds("reduced") < utt.recognition_seconds("full")

    def test_rtf_scaling(self):
        utt = UTTERANCES[2]
        expected = utt.duration_s * SPEECH_MODELS["full"]["rtf"] * utt.complexity
        assert utt.recognition_seconds("full") == pytest.approx(expected)

    def test_waveform_bytes(self):
        utt = UTTERANCES[0]
        assert utt.waveform_bytes == int(utt.duration_s * 32_000)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            UTTERANCES[0].recognition_seconds("huge")

    def test_lookup_by_name(self):
        assert utterance_by_name("utterance-3").name == "utterance-3"
        with pytest.raises(KeyError):
            utterance_by_name("utterance-9")


class TestMaps:
    def test_four_maps(self):
        assert len(MAPS) == 4

    def test_filters_reduce_bytes_monotonically(self):
        for city in MAPS:
            assert (
                city.bytes_at("crop-secondary")
                < city.bytes_at("secondary-filter")
                < city.bytes_at("minor-filter")
                < city.bytes_at("full")
            )

    def test_crop_and_filter_compose_multiplicatively(self):
        city = MAPS[0]
        expected = int(city.full_bytes * city.crop_factor * city.minor_factor)
        assert city.bytes_at("crop-minor") == expected

    def test_per_city_filter_effectiveness_varies(self):
        """Dense vs sparse road grids (the Figure 10 spread)."""
        factors = [city.minor_factor for city in MAPS]
        assert max(factors) - min(factors) > 0.3

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(KeyError):
            MAPS[0].bytes_at("sepia")

    def test_lookup_by_name(self):
        assert map_by_name("boston").name == "boston"
        with pytest.raises(KeyError):
            map_by_name("atlantis")


class TestImages:
    def test_four_images_in_paper_size_range(self):
        assert len(IMAGES) == 4
        sizes = [img.full_bytes for img in IMAGES]
        assert min(sizes) == 110
        assert max(sizes) == 175_000

    def test_quality_reduces_bytes_monotonically(self):
        image = image_by_name("image-1")
        assert (
            image.bytes_at("jpeg-5")
            < image.bytes_at("jpeg-25")
            < image.bytes_at("jpeg-50")
            < image.bytes_at("jpeg-75")
            < image.bytes_at("full")
        )

    def test_tiny_image_cannot_shrink(self):
        """110 B image hits the floor at every quality (paper's point)."""
        tiny = image_by_name("image-4")
        assert tiny.bytes_at("jpeg-5") == tiny.bytes_at("full") == 110

    def test_unknown_quality_rejected(self):
        with pytest.raises(KeyError):
            IMAGES[0].bytes_at("jpeg-200")


class TestThinkTime:
    def test_fixed_model_returns_constant(self):
        model = FixedThinkTime(5.0)
        assert [model.next() for _ in range(3)] == [5.0, 5.0, 5.0]

    def test_negative_fixed_rejected(self):
        with pytest.raises(ValueError):
            FixedThinkTime(-1.0)

    def test_random_model_bounded_and_deterministic(self):
        a = RandomThinkTime(mean=5.0, spread=0.5, seed=42)
        b = RandomThinkTime(mean=5.0, spread=0.5, seed=42)
        values = [a.next() for _ in range(50)]
        assert values == [b.next() for _ in range(50)]
        assert all(2.5 <= v <= 7.5 for v in values)

    def test_random_model_validation(self):
        with pytest.raises(ValueError):
            RandomThinkTime(mean=-1)
        with pytest.raises(ValueError):
            RandomThinkTime(spread=2.0)


class TestBurstySchedule:
    def test_length_and_indexing(self):
        schedule = BurstySchedule("video", minutes=60, seed=1)
        assert len(schedule) == 60
        with pytest.raises(IndexError):
            schedule.active_in_minute(60)

    def test_deterministic_per_seed(self):
        a = BurstySchedule("x", 120, seed=7)
        b = BurstySchedule("x", 120, seed=7)
        assert a.states == b.states

    def test_different_seeds_differ(self):
        a = BurstySchedule("x", 120, seed=1)
        b = BurstySchedule("x", 120, seed=2)
        assert a.states != b.states

    def test_state_persistence_probability(self):
        """~10% switching: long runs of the same state dominate."""
        schedule = BurstySchedule("x", 5000, seed=3)
        switches = sum(
            1 for a, b in zip(schedule.states, schedule.states[1:]) if a != b
        )
        rate = switches / (len(schedule) - 1)
        assert 0.07 < rate < 0.13

    def test_duty_cycle_bounds(self):
        schedule = BurstySchedule("x", 300, seed=9)
        assert 0.0 <= schedule.duty_cycle <= 1.0

    def test_generate_schedules_one_per_app(self):
        schedules = generate_schedules(["a", "b", "c"], minutes=30, seed=4)
        assert set(schedules) == {"a", "b", "c"}
        assert all(len(s) == 30 for s in schedules.values())

    def test_generate_schedules_apps_independent(self):
        schedules = generate_schedules(["a", "b"], minutes=200, seed=4)
        assert schedules["a"].states != schedules["b"].states
