"""The ``repro bench`` harness: runner, comparison logic, CLI wiring."""

import json

import pytest

from repro.perf import BENCH_NAMES, compare, run_benchmarks
from repro.perf.bench import render_bench_table, render_comparison


def make_results(quick=True, cal=0.1, engine=1.0, speedup=4.0,
                 identical=True):
    return {
        "version": 1,
        "quick": quick,
        "repeats": 1,
        "benches": {
            "calibration": {"seconds": cal, "iterations": 500_000},
            "engine_events": {"seconds": engine, "events": 10_000,
                              "events_per_s": 10_000 / engine, "fired": 9000},
            "fig22_longduration": {
                "seconds": 0.5, "eager_s": 0.5 * speedup, "lazy_s": 0.5,
                "speedup": speedup, "tables_identical": identical,
                "samples": 1000, "goal_seconds": 90.0,
            },
        },
    }


class TestCompare:
    def test_no_regression_when_identical(self):
        base = make_results()
        rows, failures = compare(base, base)
        assert failures == []
        assert all(not row["regressed"] for row in rows)

    def test_flags_regression_beyond_threshold(self):
        base = make_results()
        cur = make_results(engine=1.5)  # 50% slower, same calibration
        rows, failures = compare(cur, base, max_regression=0.25)
        assert any("engine_events" in failure for failure in failures)
        engine_row = next(r for r in rows if r["name"] == "engine_events")
        assert engine_row["regressed"]
        assert engine_row["normalized_ratio"] == pytest.approx(1.5)

    def test_calibration_normalizes_away_slower_machines(self):
        base = make_results()
        # Everything 2x slower — a slower box, not a regression.
        cur = make_results(cal=0.2, engine=2.0)
        cur["benches"]["fig22_longduration"]["seconds"] = 1.0
        rows, failures = compare(cur, base, max_regression=0.25)
        assert failures == []

    def test_quick_full_mismatch_fails(self):
        base = make_results(quick=True)
        cur = make_results(quick=False)
        _, failures = compare(cur, base)
        assert any("quick/full mismatch" in failure for failure in failures)

    def test_min_speedup_floor(self):
        base = make_results()
        cur = make_results(speedup=2.0)
        _, failures = compare(cur, base, min_speedup=3.0)
        assert any("below the 3.00x floor" in failure for failure in failures)
        _, ok = compare(cur, base, min_speedup=1.5)
        assert ok == []

    def test_diverged_tables_fail(self):
        base = make_results()
        cur = make_results(identical=False)
        _, failures = compare(cur, base)
        assert any("diverged" in failure for failure in failures)

    def test_missing_calibration_reported(self):
        base = make_results()
        cur = make_results()
        del cur["benches"]["calibration"]
        _, failures = compare(cur, base)
        assert any("calibration" in failure for failure in failures)


class TestRunner:
    def test_subset_run_includes_calibration(self):
        results = run_benchmarks(quick=True, only=["engine_events"])
        assert set(results["benches"]) == {"calibration", "engine_events"}
        for metrics in results["benches"].values():
            assert metrics["seconds"] > 0
        assert results["quick"] is True
        # Every cancelled tenth event was skipped, the rest fired.
        engine = results["benches"]["engine_events"]
        assert engine["fired"] == engine["events"] - engine["events"] // 10

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            run_benchmarks(quick=True, only=["nope"])

    def test_machine_advance_bench_runs(self):
        results = run_benchmarks(quick=True, only=["machine_advance"])
        metrics = results["benches"]["machine_advance"]
        assert metrics["advances"] == 5_000
        assert metrics["energy_total"] > 0

    def test_bench_names_stable(self):
        assert "fig22_longduration" in BENCH_NAMES
        assert "calibration" in BENCH_NAMES

    def test_render_helpers(self):
        results = make_results()
        assert "fig22_longduration" in render_bench_table(results)
        rows, _ = compare(results, results)
        assert "normalized" in render_comparison(rows)


class TestCli:
    def test_bench_cli_writes_json_and_compares(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "out" / "BENCH_core.json"
        code = main([
            "bench", "--quick", "--only", "engine_events",
            "--out", str(out),
        ])
        assert code == 0
        written = json.loads(out.read_text())
        assert "engine_events" in written["benches"]
        # Now compare against itself: no regression, exit 0.
        code = main([
            "bench", "--quick", "--only", "engine_events",
            "--out", str(out.with_name("second.json")),
            "--compare", str(out),
        ])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_cli_confirms_regressions_before_failing(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        out = tmp_path / "BENCH_core.json"
        code = main(["bench", "--quick", "--only", "engine_events",
                     "--out", str(out)])
        assert code == 0
        capsys.readouterr()
        # Fabricate a baseline the current machine can never match: the
        # regression is "real", so confirmation re-runs must still fail.
        baseline = json.loads(out.read_text())
        baseline["benches"]["engine_events"]["seconds"] /= 100.0
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(baseline))
        code = main([
            "bench", "--quick", "--only", "engine_events",
            "--out", str(out.with_name("second.json")),
            "--compare", str(base_path), "--confirm", "2",
        ])
        captured = capsys.readouterr().out
        assert code == 1
        assert "re-running engine_events to confirm (attempt 1/2)" in captured
        assert "attempt 2/2" in captured
        assert "FAIL: engine_events" in captured

    def test_bench_cli_confirm_zero_fails_immediately(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        out = tmp_path / "BENCH_core.json"
        code = main(["bench", "--quick", "--only", "engine_events",
                     "--out", str(out)])
        assert code == 0
        capsys.readouterr()
        baseline = json.loads(out.read_text())
        baseline["benches"]["engine_events"]["seconds"] /= 100.0
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(baseline))
        code = main([
            "bench", "--quick", "--only", "engine_events",
            "--out", str(out.with_name("second.json")),
            "--compare", str(base_path), "--confirm", "0",
        ])
        captured = capsys.readouterr().out
        assert code == 1
        assert "re-running" not in captured

    def test_bench_cli_fails_on_impossible_speedup_floor(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "BENCH_core.json"
        code = main(["bench", "--quick", "--only", "engine_events",
                     "--out", str(out)])
        assert code == 0
        # engine_events-only runs have no fig22 metrics, so the floor is
        # not evaluated; exercise it via a synthetic baseline instead.
        current = json.loads(out.read_text())
        current["benches"]["fig22_longduration"] = {
            "seconds": 1.0, "eager_s": 2.0, "lazy_s": 1.0, "speedup": 2.0,
            "tables_identical": True, "samples": 10, "goal_seconds": 90.0,
        }
        _, failures = compare(current, current, min_speedup=3.0)
        assert failures
