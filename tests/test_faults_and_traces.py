"""Tests for RPC fault injection, frame dropping, and session traces."""

import pytest

from repro.experiments import build_rig
from repro.net import Link, NetworkError, RpcChannel, RpcTimeout, Server
from repro.hardware import build_machine
from repro.sim import Simulator
from repro.workloads import SessionTrace, TraceAction, TraceError
from repro.workloads.videos import VideoClip


class TestRpcTimeouts:
    def make_channel(self, server_speed=1.0, **kwargs):
        sim = Simulator()
        machine = build_machine(sim)
        link = Link(machine, latency=0.0)
        server = Server("slow", speed=server_speed)
        return sim, machine, RpcChannel(link, server, **kwargs)

    def test_validation(self):
        sim, machine, _ = self.make_channel()
        link = Link(machine, latency=0.0)
        with pytest.raises(NetworkError):
            RpcChannel(link, Server("s"), timeout=0.0)
        with pytest.raises(NetworkError):
            RpcChannel(link, Server("s"), retries=-1)

    def test_fast_server_completes_within_timeout(self):
        sim, machine, channel = self.make_channel(timeout=5.0)
        done = []

        def client():
            took = yield from channel.call(1000, 1000, work_units=1.0)
            done.append(took)

        sim.spawn(client())
        sim.run()
        assert done and done[0] < 5.0
        assert channel.timeouts == 0

    def test_slow_server_times_out_and_raises(self):
        sim, machine, channel = self.make_channel(
            server_speed=0.1, timeout=2.0
        )

        def client():
            yield from channel.call(1000, 1000, work_units=1.0)  # 10 s work

        sim.spawn(client())
        with pytest.raises(RpcTimeout):
            sim.run()
        assert channel.timeouts == 1

    def test_retry_succeeds_after_server_recovers(self):
        sim, machine, channel = self.make_channel(
            server_speed=0.1, timeout=2.0, retries=1
        )
        # The server recovers while the first attempt is waiting.
        sim.schedule(1.0, lambda t: channel.server.set_speed(10.0))
        done = []

        def client():
            took = yield from channel.call(1000, 1000, work_units=1.0)
            done.append(took)

        sim.spawn(client())
        sim.run()
        assert done, "retry should have succeeded"
        assert channel.timeouts == 1

    def test_timeout_costs_energy(self):
        """A timed-out attempt is not free: the client was receive-ready
        for the whole deadline."""
        sim, machine, channel = self.make_channel(
            server_speed=0.01, timeout=3.0, retries=0
        )

        def client():
            try:
                yield from channel.call(1000, 1000, work_units=1.0)
            except RpcTimeout:
                pass

        sim.spawn(client())
        sim.run()
        machine.advance()
        assert sim.now >= 3.0
        assert machine.energy_total > 0


class TestFrameDropping:
    def play_under_contention(self, drop):
        rig = build_rig(pm_enabled=True)
        player = rig.apps["video"]
        player.drop_late_frames = drop
        clip = VideoClip("contended", 10.0, 12.0, 16_250)

        def hog():
            # A competing CPU hog: long bursts that starve the decoder.
            for _ in range(10):
                yield from rig.machine.compute(0.6, "hog")
                yield rig.sim.timeout(0.2)

        rig.sim.spawn(hog())
        proc = rig.sim.spawn(player.play(clip))
        energy = rig.run_until_complete(proc)
        return player, energy

    def test_drops_occur_only_when_enabled(self):
        keep_player, _ = self.play_under_contention(drop=False)
        drop_player, _ = self.play_under_contention(drop=True)
        assert keep_player.frames_dropped == 0
        assert drop_player.frames_dropped > 0
        played_plus_dropped = (
            drop_player.frames_played + drop_player.frames_dropped
        )
        assert played_plus_dropped == keep_player.frames_played

    def test_dropping_saves_decode_energy(self):
        _, keep_energy = self.play_under_contention(drop=False)
        _, drop_energy = self.play_under_contention(drop=True)
        assert drop_energy < keep_energy

    def test_no_drops_without_contention(self):
        rig = build_rig(pm_enabled=True)
        player = rig.apps["video"]
        player.drop_late_frames = True
        clip = VideoClip("calm", 5.0, 12.0, 16_250)
        proc = rig.sim.spawn(player.play(clip))
        rig.run_until_complete(proc)
        assert player.frames_dropped == 0


TRACE_TEXT = """
# a short session
0.0   speech utterance-1
5.0   web image-3
18.0  map allentown
40.0  video video-1 6
50.0  idle 4
"""


class TestSessionTrace:
    def test_parse_and_len(self):
        trace = SessionTrace.parse(TRACE_TEXT)
        assert len(trace) == 5
        assert trace.span == 50.0

    def test_parse_rejects_bad_lines(self):
        with pytest.raises(TraceError):
            SessionTrace.parse("abc speech utterance-1")
        with pytest.raises(TraceError):
            SessionTrace.parse("0.0 teleport somewhere")
        with pytest.raises(TraceError):
            SessionTrace.parse("0.0 idle")        # missing duration
        with pytest.raises(TraceError):
            SessionTrace.parse("0.0 video clip")  # missing duration
        with pytest.raises(TraceError):
            SessionTrace.parse("# only comments\n")

    def test_action_validation(self):
        with pytest.raises(TraceError):
            TraceAction(-1.0, "speech", "utterance-1")
        with pytest.raises(TraceError):
            TraceAction(0.0, "warp", "x")
        with pytest.raises(TraceError):
            TraceAction(0.0, "idle", "", duration=0.0)

    def test_render_round_trips(self):
        trace = SessionTrace.parse(TRACE_TEXT)
        again = SessionTrace.parse(trace.render())
        assert [a.kind for a in again] == [a.kind for a in trace]
        assert [a.at for a in again] == [a.at for a in trace]

    def test_actions_sorted_by_time(self):
        trace = SessionTrace([
            TraceAction(10.0, "web", "image-1"),
            TraceAction(2.0, "speech", "utterance-1"),
        ])
        assert [a.at for a in trace] == [2.0, 10.0]

    def test_replay_drives_all_applications(self):
        rig = build_rig(pm_enabled=True)
        trace = SessionTrace.parse(TRACE_TEXT)
        proc = rig.sim.spawn(trace.replay(rig))
        rig.run_until_complete(proc)
        assert rig.apps["speech"].utterances_recognized == 1
        assert rig.apps["web"].pages_viewed == 1
        assert rig.apps["map"].maps_viewed == 1
        assert rig.apps["video"].frames_played == 6 * 12
        # Replay honors the schedule: ends after the final idle.
        assert rig.sim.now >= 54.0

    def test_replay_is_deterministic(self):
        energies = []
        for _ in range(2):
            rig = build_rig(pm_enabled=True)
            trace = SessionTrace.parse(TRACE_TEXT)
            proc = rig.sim.spawn(trace.replay(rig))
            energies.append(rig.run_until_complete(proc))
        assert energies[0] == pytest.approx(energies[1])
