"""Unit tests for generator-based processes and FIFO resources."""

import pytest

from repro.sim import (
    Interrupted,
    ProcessError,
    Resource,
    ResourceError,
    Simulator,
)


class TestProcessLifecycle:
    def test_process_runs_to_completion(self):
        sim = Simulator()
        steps = []

        def proc():
            steps.append(sim.now)
            yield sim.timeout(1.0)
            steps.append(sim.now)
            yield sim.timeout(2.0)
            steps.append(sim.now)

        process = sim.spawn(proc())
        sim.run()
        assert steps == [0.0, 1.0, 3.0]
        assert not process.alive
        assert not process.failed

    def test_spawn_requires_generator(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.spawn(lambda: None)  # not a generator object

    def test_return_value_delivered_to_joiner(self):
        sim = Simulator()
        results = []

        def child():
            yield sim.timeout(1.0)
            return 42

        def parent():
            value = yield sim.spawn(child())
            results.append(value)

        sim.spawn(parent())
        sim.run()
        assert results == [42]

    def test_yield_from_composes_subactivities(self):
        sim = Simulator()
        trace = []

        def inner(tag):
            yield sim.timeout(1.0)
            trace.append((tag, sim.now))
            return tag

        def outer():
            a = yield from inner("a")
            b = yield from inner("b")
            return a + b

        def main():
            result = yield sim.spawn(outer())
            trace.append(("total", result))

        sim.spawn(main())
        sim.run()
        assert trace == [("a", 1.0), ("b", 2.0), ("total", "ab")]

    def test_yielding_non_waitable_fails_the_process(self):
        sim = Simulator()

        def bad():
            yield 123

        process = sim.spawn(bad())
        with pytest.raises(ProcessError):
            sim.run()
        assert process.failed

    def test_exception_in_process_propagates(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        process = sim.spawn(bad())
        with pytest.raises(ValueError):
            sim.run()
        assert process.failed
        assert isinstance(process.error, ValueError)

    def test_processes_have_unique_pids_and_names(self):
        sim = Simulator()

        def noop():
            yield sim.timeout(0)

        a = sim.spawn(noop(), name="alpha")
        b = sim.spawn(noop())
        assert a.name == "alpha"
        assert a.pid != b.pid
        assert sim.processes == (a, b)


class TestInterrupts:
    def test_interrupt_raises_inside_process(self):
        sim = Simulator()
        caught = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupted as exc:
                caught.append(exc.cause)

        process = sim.spawn(sleeper())
        sim.schedule(5.0, lambda t: process.interrupt("wakeup"))
        sim.run()
        assert caught == ["wakeup"]

    def test_unhandled_interrupt_terminates_quietly(self):
        sim = Simulator()

        def sleeper():
            yield sim.timeout(100.0)

        process = sim.spawn(sleeper())
        sim.schedule(1.0, lambda t: process.interrupt())
        sim.run()
        assert not process.alive
        assert not process.failed

    def test_interrupting_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        process = sim.spawn(quick())
        sim.run()
        process.interrupt("too late")
        sim.run()
        assert not process.failed


class TestResource:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ResourceError):
            Resource(Simulator(), capacity=0)

    def test_grants_within_capacity_are_immediate(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        g1 = res.acquire()
        g2 = res.acquire()
        assert g1.triggered and g2.triggered
        assert res.in_use == 2

    def test_excess_acquirers_queue_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        g1 = res.acquire()
        g2 = res.acquire()
        g3 = res.acquire()
        assert g1.triggered and not g2.triggered and not g3.triggered
        assert res.queued == 2
        res.release(g1)
        assert g2.triggered and not g3.triggered
        res.release(g2)
        assert g3.triggered

    def test_release_of_unheld_grant_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        g1 = res.acquire()
        g2 = res.acquire()  # queued, not held
        with pytest.raises(ResourceError):
            res.release(g2)
        res.release(g1)

    def test_use_serializes_contending_processes(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="cpu")
        spans = []

        def worker(tag, duration):
            start_holder = []
            yield from res.use(
                duration,
                owner=tag,
                on_grant=lambda: start_holder.append(sim.now),
            )
            spans.append((tag, start_holder[0], sim.now))

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 3.0))
        sim.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]

    def test_use_invokes_release_hook_exactly_when_done(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        released_at = []

        def worker():
            yield from res.use(4.0, on_release=lambda: released_at.append(sim.now))

        sim.spawn(worker())
        sim.run()
        assert released_at == [4.0]
        assert res.in_use == 0
