"""Import-surface tests: every documented public name resolves.

Guards against refactors silently breaking the public API that the
README, examples, and downstream users rely on.
"""

import importlib

import pytest

import repro

SURFACES = {
    "repro.sim": [
        "Simulator", "Timeout", "Event", "Waitable", "Process", "Resource",
        "QuantumScheduler", "Timeline", "TraceRecord", "SimulationError",
        "SchedulingError", "ProcessError", "ResourceError", "Interrupted",
    ],
    "repro.hardware": [
        "Battery", "ExternalSupply", "PeukertBattery", "RecoveryBattery",
        "VoltageCurve", "PowerComponent", "Cpu", "Disk", "Display",
        "ZonedDisplay", "Rect", "WaveLan", "Machine", "MemorySystem",
        "PowerManager", "build_machine", "thinkpad560x",
    ],
    "repro.powerscope": [
        "Multimeter", "SystemMonitor", "OnlinePowerMonitor",
        "SmartBatteryGauge", "EnergyProfile", "correlate", "render_profile",
        "diff_profiles", "render_diff", "profile_run",
    ],
    "repro.net": [
        "Link", "RpcChannel", "RpcTimeout", "Server", "BandwidthEstimator",
        "NetworkError", "DisconnectedError", "INTERRUPT_PROCESS",
    ],
    "repro.core": [
        "FidelityLadder", "Warden", "Viceroy", "Upcall", "EnergySupply",
        "DemandPredictor", "AdaptationTrigger", "PriorityLadder",
        "GoalDirectedController", "Odyssey", "DiskCache", "ResourceWindow",
        "ExpectationRegistry", "ExpectationMonitor",
    ],
    "repro.apps": [
        "AdaptiveApplication", "VideoPlayer", "SpeechRecognizer",
        "MapViewer", "WebBrowser", "CompositeApplication", "XServer",
        "ZonedWindowManager", "CostModel", "DEFAULT_COSTS",
    ],
    "repro.workloads": [
        "VIDEO_CLIPS", "UTTERANCES", "MAPS", "IMAGES", "FixedThinkTime",
        "RandomThinkTime", "BurstySchedule", "SessionTrace",
    ],
    "repro.analysis": [
        "summarize", "fit_linear", "normalize_to_baseline", "render_table",
        "ascii_chart", "ascii_staircase", "energy_table_csv", "timeline_csv",
    ],
    "repro.experiments": [
        "build_rig", "run_trials", "measure_video", "measure_speech",
        "measure_map", "measure_web", "concurrency_table",
        "measure_video_zoned", "run_goal_experiment",
        "fidelity_runtime_bounds", "derive_goals", "halflife_sweep",
        "run_bursty_experiment", "full_report", "export_figures",
    ],
}


@pytest.mark.parametrize("module_name", sorted(SURFACES))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in SURFACES[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"
        assert name in module.__all__, f"{module_name}.{name} not in __all__"


def test_package_version():
    assert repro.__version__ == "1.0.0"


def test_subpackage_list():
    for sub in repro.__all__:
        if sub == "__version__":
            continue
        importlib.import_module(f"repro.{sub}")
