"""Tests for the PowerScope energy profiler."""

import pytest

from repro.hardware import ExternalSupply, Machine, PowerComponent, build_machine
from repro.powerscope import (
    CorrelationError,
    CurrentSample,
    EnergyProfile,
    Multimeter,
    OnlinePowerMonitor,
    PcPidSample,
    SystemMonitor,
    correlate,
    profile_run,
    render_profile,
)
from repro.sim import Simulator


def flat_machine(sim, watts=8.0, voltage=16.0):
    machine = Machine(sim, ExternalSupply(), voltage=voltage)
    machine.attach(PowerComponent("base", {"on": watts}, "on"))
    return machine


class TestMultimeter:
    def test_samples_at_configured_rate(self):
        sim = Simulator()
        machine = flat_machine(sim)
        meter = Multimeter(machine, rate_hz=10.0)
        meter.start()
        sim.run(until=1.0)
        assert meter.sample_count == 10

    def test_sample_value_is_machine_current(self):
        sim = Simulator()
        machine = flat_machine(sim, watts=8.0, voltage=16.0)
        meter = Multimeter(machine, rate_hz=10.0)
        meter.start()
        sim.run(until=0.5)
        assert all(s.amps == pytest.approx(0.5) for s in meter.samples)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        machine = flat_machine(sim)
        meter = Multimeter(machine, rate_hz=10.0)
        meter.start()
        sim.run(until=0.5)
        meter.stop()
        sim.run(until=2.0)
        assert meter.sample_count == 5

    def test_invalid_rate_rejected(self):
        sim = Simulator()
        machine = flat_machine(sim)
        with pytest.raises(ValueError):
            Multimeter(machine, rate_hz=0.0)

    def test_double_start_is_idempotent(self):
        sim = Simulator()
        machine = flat_machine(sim)
        meter = Multimeter(machine, rate_hz=10.0)
        meter.start()
        meter.start()
        sim.run(until=1.0)
        assert meter.sample_count == 10

    def test_trigger_drives_system_monitor(self):
        sim = Simulator()
        machine = flat_machine(sim)
        monitor = SystemMonitor(machine)
        meter = Multimeter(machine, rate_hz=10.0, monitor=monitor)
        meter.start()
        sim.run(until=1.0)
        assert len(monitor.samples) == meter.sample_count
        assert all(
            c.time == p.time for c, p in zip(meter.samples, monitor.samples)
        )


class TestSystemMonitor:
    def test_samples_current_context(self):
        sim = Simulator()
        machine = flat_machine(sim)
        monitor = SystemMonitor(machine)
        token = machine.push_context("xanim", "_decode")
        sample = monitor.sample()
        machine.pop_context(token)
        assert sample.process == "xanim"
        assert sample.procedure == "_decode"

    def test_idle_context_by_default(self):
        sim = Simulator()
        machine = flat_machine(sim)
        assert SystemMonitor(machine).sample().process == "Idle"

    def test_overlay_sampled_statistically(self):
        sim = Simulator()
        machine = flat_machine(sim)
        machine.add_overlay(0.5, "Interrupts-WaveLAN")
        monitor = SystemMonitor(machine, seed=7)
        hits = sum(
            1 for _ in range(2000)
            if monitor.sample().process == "Interrupts-WaveLAN"
        )
        assert 0.45 < hits / 2000 < 0.55


class TestCorrelate:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CorrelationError):
            correlate([CurrentSample(0.0, 1.0)], [], voltage=16.0)

    def test_empty_sequences_yield_empty_profile(self):
        profile = correlate([], [], voltage=16.0)
        assert profile.total_energy == 0.0
        assert profile.sample_count == 0

    def test_single_sample_requires_explicit_period(self):
        current = [CurrentSample(0.1, 0.5)]
        pcpid = [PcPidSample(0.1, "a", "m")]
        with pytest.raises(CorrelationError):
            correlate(current, pcpid, voltage=16.0)
        profile = correlate(current, pcpid, voltage=16.0, period=0.1)
        assert profile.total_energy == pytest.approx(16.0 * 0.5 * 0.1)

    def test_energy_is_v_times_i_times_dt(self):
        period = 0.1
        current = [CurrentSample(i * period, 0.5) for i in range(1, 11)]
        pcpid = [PcPidSample(i * period, "app", "m") for i in range(1, 11)]
        profile = correlate(current, pcpid, voltage=16.0)
        assert profile.total_energy == pytest.approx(16.0 * 0.5 * 1.0)
        assert profile.energy_of("app") == pytest.approx(8.0)

    def test_desynchronized_sequences_rejected(self):
        current = [CurrentSample(0.1, 0.5), CurrentSample(0.2, 0.5)]
        pcpid = [PcPidSample(0.1, "a", "m"), PcPidSample(0.9, "a", "m")]
        with pytest.raises(CorrelationError):
            correlate(current, pcpid, voltage=16.0, period=0.1)

    def test_per_procedure_detail(self):
        period = 0.1
        current = [CurrentSample(i * period, 1.0) for i in range(1, 5)]
        pcpid = [
            PcPidSample(0.1, "app", "f"),
            PcPidSample(0.2, "app", "f"),
            PcPidSample(0.3, "app", "g"),
            PcPidSample(0.4, "other", "h"),
        ]
        profile = correlate(current, pcpid, voltage=10.0)
        procs = {e.name: e for e in profile.sorted_procedures("app")}
        assert procs["f"].energy_joules == pytest.approx(2.0)
        assert procs["g"].energy_joules == pytest.approx(1.0)
        assert profile.energy_of("other") == pytest.approx(1.0)


class TestEnergyProfile:
    def test_average_power(self):
        profile = EnergyProfile()
        profile.record("app", "m", seconds=2.0, joules=10.0)
        assert profile.processes["app"].average_power == pytest.approx(5.0)

    def test_average_power_zero_time(self):
        profile = EnergyProfile()
        profile.record("app", "m", seconds=0.0, joules=0.0)
        assert profile.processes["app"].average_power == 0.0

    def test_fraction_of(self):
        profile = EnergyProfile()
        profile.record("a", "m", 1.0, 30.0)
        profile.record("b", "m", 1.0, 10.0)
        assert profile.fraction_of("a") == pytest.approx(0.75)
        assert profile.fraction_of("ghost") == 0.0

    def test_sorted_processes_highest_energy_first(self):
        profile = EnergyProfile()
        profile.record("small", "m", 1.0, 1.0)
        profile.record("big", "m", 1.0, 100.0)
        assert [e.name for e in profile.sorted_processes()] == ["big", "small"]


class TestProfileAccuracy:
    """Statistical sampling must converge to the machine's ground truth."""

    def test_sampled_energy_matches_integrated_energy(self):
        sim = Simulator()
        machine = build_machine(sim)

        def app():
            yield from machine.compute(3.0, "worker", "crunch")
            yield sim.timeout(2.0)
            yield from machine.compute(1.0, "worker", "crunch")

        sim.spawn(app())
        profile = profile_run(machine, until=10.0, rate_hz=600.0)
        assert profile.total_energy == pytest.approx(
            machine.energy_total, rel=0.01
        )

    def test_sampled_attribution_matches_ground_truth(self):
        sim = Simulator()
        machine = build_machine(sim)

        def app():
            yield from machine.compute(4.0, "worker", "crunch")

        sim.spawn(app())
        profile = profile_run(machine, until=10.0, rate_hz=600.0)
        truth = machine.energy_report()
        assert profile.energy_of("worker") == pytest.approx(
            truth["worker"], rel=0.02
        )
        assert profile.energy_of("Idle") == pytest.approx(truth["Idle"], rel=0.02)


class TestReport:
    def test_report_contains_processes_and_total(self):
        profile = EnergyProfile()
        profile.record("xanim", "_DecodeFrame", 10.0, 120.0)
        profile.record("X", "_Dispatch", 5.0, 50.0)
        profile.elapsed = 20.0
        text = render_profile(profile, detail_process="xanim")
        assert "xanim" in text
        assert "Total" in text
        assert "_DecodeFrame" in text
        assert "Energy Usage Detail" in text

    def test_report_orders_by_energy(self):
        profile = EnergyProfile()
        profile.record("minor", "m", 1.0, 5.0)
        profile.record("major", "m", 1.0, 500.0)
        profile.elapsed = 2.0
        text = render_profile(profile)
        assert text.index("major") < text.index("minor")


class TestOnlineMonitor:
    def test_subscribers_receive_periodic_samples(self):
        sim = Simulator()
        machine = flat_machine(sim, watts=8.0)
        monitor = OnlinePowerMonitor(machine, period=0.1)
        got = []
        monitor.subscribe(lambda t, w, dt: got.append((t, w, dt)))
        monitor.start()
        sim.run(until=1.0)
        assert len(got) == 10
        times, watts, dts = zip(*got)
        assert watts[0] == pytest.approx(8.0)
        assert all(dt == pytest.approx(0.1) for dt in dts)

    def test_invalid_period_rejected(self):
        sim = Simulator()
        machine = flat_machine(sim)
        with pytest.raises(ValueError):
            OnlinePowerMonitor(machine, period=0.0)

    def test_stop_halts_feed(self):
        sim = Simulator()
        machine = flat_machine(sim)
        monitor = OnlinePowerMonitor(machine, period=0.1)
        got = []
        monitor.subscribe(lambda t, w, dt: got.append(t))
        monitor.start()
        sim.run(until=0.5)
        monitor.stop()
        sim.run(until=1.0)
        assert len(got) == 5

    def test_residual_energy_accounting_from_samples(self):
        """Integrating sampled power reproduces drained energy (§5.1.1)."""
        sim = Simulator()
        machine = flat_machine(sim, watts=8.0)
        monitor = OnlinePowerMonitor(machine, period=0.1)
        account = {"residual": 100.0}

        def on_sample(_t, watts, dt):
            account["residual"] -= watts * dt

        monitor.subscribe(on_sample)
        monitor.start()
        sim.run(until=5.0)
        machine.advance()
        assert account["residual"] == pytest.approx(100.0 - machine.energy_total)
