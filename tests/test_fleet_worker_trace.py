"""Worker-trace merge: in-worker rings surface on per-task tracks."""

from repro.fleet.runner import FleetRunner
from repro.fleet.spec import CampaignSpec, Task
from repro.obs import Tracer, installed

#: A tiny traced simulation the worker can run end-to-end.
SIM_TASK = Task(
    id="warm/tiny",
    fn="repro.snapshot.warm.pulse_goal_summary",
    params={"goal_seconds": 40.0, "initial_energy": 500.0,
            "extend_at": 20.0},
)


def test_serial_runner_merges_worker_events():
    tracer = Tracer()
    with installed(tracer):
        runner = FleetRunner(jobs=1, worker_trace=True)
        assert runner.worker_trace is True
        result = runner.run(CampaignSpec(name="wt", tasks=[SIM_TASK]))
    tracer.flush()
    assert result.ok
    merged = [e for e in tracer.events
              if e.cat == "fleet" and (e.track or "").startswith("w")]
    assert merged, "no worker events merged into the coordinator trace"
    # replayed names carry the original category as a prefix
    assert all("/" in e.name for e in merged)
    assert all(e.track.endswith("/warm/tiny") for e in merged)
    # original sim-domain categories must NOT leak into the coordinator
    assert not any(e.cat in ("sim", "core", "power") for e in merged)


def test_worker_trace_disabled_without_open_gate():
    """Shipping rings is pure overhead when nothing records them."""
    runner = FleetRunner(jobs=1, worker_trace=True)
    assert runner.worker_trace is False


def test_worker_trace_off_by_default():
    tracer = Tracer()
    with installed(tracer):
        runner = FleetRunner(jobs=1)
        assert runner.worker_trace is False
        runner.run(CampaignSpec(name="wt-off", tasks=[SIM_TASK]))
    tracer.flush()
    merged = [e for e in tracer.events
              if e.cat == "fleet" and (e.track or "").startswith("w")]
    assert merged == []


def test_merged_trace_exports_valid_chrome_json():
    from repro.obs.export import chrome_trace, validate_chrome_trace

    tracer = Tracer()
    with installed(tracer):
        FleetRunner(jobs=1, worker_trace=True).run(
            CampaignSpec(name="wt-chrome", tasks=[SIM_TASK]))
    tracer.flush()
    trace = chrome_trace(list(tracer.events))
    validate_chrome_trace(trace)
    names = {row.get("tid") for row in trace.get("traceEvents", [])
             if row.get("ph") == "M"}
    assert names  # thread-name metadata present for the merged tracks
