"""Tests for the repro.obs exporters and the Chrome-trace validator."""

import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    chrome_trace,
    join_power,
    power_spans,
    read_events_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics,
)


def _sample_tracer():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.instant(0.0, "sim", "dispatch", track="engine", args={"seq": 1})
    tracer.complete(0.0, "power", "span", dur=2.0, track="machine",
                    args={"sid": 1, "watts": 5.0, "joules": 10.0,
                          "process": "Idle", "procedure": "_kernel_idle"})
    tracer.instant(1.0, "core", "upcall.degrade", track="video",
                   args={"application": "video", "power_span": 1})
    tracer.counter(1.5, "power", "watts", 5.0, track="watts")
    return tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "events.jsonl"
        count = write_events_jsonl(tracer.events, path)
        assert count == 4
        records = read_events_jsonl(path)
        assert len(records) == 4
        assert records[0]["name"] == "dispatch"
        assert records[1]["dur"] == 2.0
        assert records[2]["args"]["power_span"] == 1


class TestChromeTrace:
    def test_categories_become_processes_tracks_become_threads(self):
        trace = chrome_trace(_sample_tracer().events)
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        process_names = {e["args"]["name"] for e in meta
                         if e["name"] == "process_name"}
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert process_names == {"sim", "power", "core"}
        assert {"engine", "machine", "video", "watts"} <= thread_names
        # Same category, different tracks -> same pid, different tid.
        power = [e for e in events
                 if e["ph"] != "M" and e["cat"] == "power"]
        assert len({e["pid"] for e in power}) == 1
        assert len({e["tid"] for e in power}) == 2

    def test_ts_and_dur_scale_to_microseconds(self):
        trace = chrome_trace(_sample_tracer().events)
        span = next(e for e in trace["traceEvents"]
                    if e.get("name") == "span")
        assert span["dur"] == pytest.approx(2e6)
        upcall = next(e for e in trace["traceEvents"]
                      if e.get("name") == "upcall.degrade")
        assert upcall["ts"] == pytest.approx(1e6)

    def test_out_of_order_events_sorted_per_track(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.instant(2.0, "sim", "b", track="engine")
        tracer.instant(1.0, "sim", "a", track="engine")
        trace = chrome_trace(tracer.events)
        assert not validate_chrome_trace(trace)
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "I"]
        assert names == ["a", "b"]

    def test_write_validates_and_emits_valid_json(self, tmp_path):
        path = tmp_path / "out.trace.json"
        count = write_chrome_trace(_sample_tracer().events, path)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        assert not validate_chrome_trace(loaded)


class TestValidator:
    def test_envelope_required(self):
        assert validate_chrome_trace([])
        assert validate_chrome_trace({"events": []})
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert not validate_chrome_trace({"traceEvents": []})

    def test_unknown_phase_flagged(self):
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "ts": 0, "pid": 1, "tid": 1},
        ]}
        assert any("unknown phase" in p for p in validate_chrome_trace(bad))

    def test_missing_keys_flagged(self):
        bad = {"traceEvents": [{"ph": "I", "name": "x", "ts": 0}]}
        assert any("missing" in p for p in validate_chrome_trace(bad))
        bad_meta = {"traceEvents": [{"ph": "M", "name": "process_name"}]}
        assert validate_chrome_trace(bad_meta)

    def test_backwards_ts_within_track_flagged(self):
        bad = {"traceEvents": [
            {"ph": "I", "name": "a", "ts": 5, "pid": 1, "tid": 1},
            {"ph": "I", "name": "b", "ts": 4, "pid": 1, "tid": 1},
        ]}
        assert any("backwards" in p for p in validate_chrome_trace(bad))
        # Different tracks are independent timelines.
        ok = {"traceEvents": [
            {"ph": "I", "name": "a", "ts": 5, "pid": 1, "tid": 1},
            {"ph": "I", "name": "b", "ts": 4, "pid": 1, "tid": 2},
        ]}
        assert not validate_chrome_trace(ok)

    def test_negative_dur_flagged(self):
        bad = {"traceEvents": [
            {"ph": "X", "name": "x", "ts": 0, "pid": 1, "tid": 1, "dur": -1},
        ]}
        assert any("negative dur" in p for p in validate_chrome_trace(bad))


class TestPowerJoin:
    def test_power_spans_indexes_by_sid(self):
        spans = power_spans(_sample_tracer().events)
        assert set(spans) == {1}
        assert spans[1]["watts"] == 5.0
        assert spans[1]["joules"] == 10.0
        assert spans[1]["process"] == "Idle"

    def test_join_resolves_power_span_references(self):
        joined = join_power(_sample_tracer().events)
        assert len(joined) == 1
        assert joined[0]["event"]["name"] == "upcall.degrade"
        assert joined[0]["span"]["watts"] == 5.0

    def test_join_reports_unresolved_as_none(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.instant(0.0, "core", "x", args={"power_span": 99})
        joined = join_power(tracer.events)
        assert joined[0]["span"] is None


class TestMetricsExport:
    def test_accepts_registry_or_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        path = tmp_path / "metrics.json"
        write_metrics(registry, path)
        assert json.loads(path.read_text())["counters"]["c"] == 2
        write_metrics({"counters": {"k": 1}}, path)
        assert json.loads(path.read_text())["counters"]["k"] == 1


class TestJoinSummary:
    def test_all_resolved(self):
        from repro.obs.export import join_summary

        summary = join_summary(join_power(_sample_tracer().events))
        assert summary == {"total": 1, "resolved": 1, "unresolved": 0,
                           "unresolved_sids": []}

    def test_unresolved_joins_reported_not_dropped(self):
        """Regression: a span id referencing a journal segment that
        merged away (or whose span event was ring-dropped / filtered)
        used to surface only as a silent ``span: None`` — the summary
        must count it and name the sid."""
        from repro.obs.export import join_summary

        tracer = Tracer(clock=lambda: 0.0)
        # One resolvable reference...
        tracer.complete(0.0, "power", "span", dur=1.0, track="machine",
                        args={"sid": 7, "watts": 5.0, "joules": 5.0})
        tracer.instant(0.5, "core", "upcall.degrade", track="video",
                       args={"application": "video", "power_span": 7})
        # ...and two events referencing sid 9, whose segment never
        # closed inside the recorded window.
        tracer.instant(0.6, "core", "decision.hold", track="goal",
                       args={"power_span": 9})
        tracer.instant(0.7, "core", "fidelity", track="video",
                       args={"power_span": 9})
        summary = join_summary(join_power(tracer.events))
        assert summary["total"] == 3
        assert summary["resolved"] == 1
        assert summary["unresolved"] == 2
        assert summary["unresolved_sids"] == [9]

    def test_category_filtered_power_spans_all_unresolved(self):
        """Tracing with ``categories={'core'}`` records the references
        but not the spans — every join is unresolved and the summary
        says so (the CLI warns from this)."""
        from repro.obs.export import join_summary

        tracer = Tracer(categories={"core"}, clock=lambda: 0.0)
        gate = tracer.gate("power")
        assert gate is None  # the machine would emit nothing
        tracer.instant(0.5, "core", "upcall.degrade", track="video",
                       args={"application": "video", "power_span": 3})
        summary = join_summary(join_power(tracer.events))
        assert summary["unresolved"] == 1
        assert summary["unresolved_sids"] == [3]
