"""Tests for the zoned-display window manager (paper Section 4.1)."""

import pytest

from repro.hardware import Display, HardwareError, Rect, ZonedDisplay
from repro.apps import ZonedWindowManager


def make_display(rows=2, cols=2):
    return ZonedDisplay(4.0, 2.0, rows, cols, width=800, height=600)


class TestSnapTo:
    def test_straddling_window_snaps_to_one_zone(self):
        """The paper's snap-to: move windows slightly to straddle the
        fewest possible zones."""
        display = make_display(2, 2)  # zones are 400x300
        mgr = ZonedWindowManager(display, max_snap=60)
        # A 380x280 window offset by 40 px straddles all four zones...
        straddling = Rect(40, 40, 380, 280)
        assert len(display.zones_for(straddling)) == 4
        snapped = mgr.snap(straddling)
        # ...but fits one zone after a <=60 px nudge.
        assert len(display.zones_for(snapped)) == 1
        assert abs(snapped.x - straddling.x) <= 60
        assert abs(snapped.y - straddling.y) <= 60

    def test_far_window_not_moved_beyond_max_snap(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(display, max_snap=10)
        straddling = Rect(200, 150, 380, 280)  # dead center, 4 zones
        snapped = mgr.snap(straddling)
        assert abs(snapped.x - straddling.x) <= 10
        assert abs(snapped.y - straddling.y) <= 10

    def test_already_optimal_window_not_moved(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(display, max_snap=60)
        aligned = Rect(0, 0, 390, 290)
        snapped = mgr.snap(aligned)
        assert (snapped.x, snapped.y) == (0, 0)

    def test_snap_keeps_window_on_screen(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(display, max_snap=100)
        edge = Rect(760, 560, 40, 40)
        snapped = mgr.snap(edge)
        assert snapped.x + snapped.width <= display.width
        assert snapped.y + snapped.height <= display.height

    def test_oversized_window_spans_minimum_zones(self):
        display = make_display(2, 4)  # zones are 200x300
        mgr = ZonedWindowManager(display, max_snap=60)
        wide = Rect(30, 100, 580, 150)  # spans cols 0-3 (4 zones)
        snapped = mgr.snap(wide)
        assert len(display.zones_for(snapped)) <= 3


class TestFocusIllumination:
    def test_focus_window_zones_bright_rest_off(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(
            display, peripheral_level=ZonedDisplay.OFF
        )
        mgr.place("video", Rect(0, 0, 300, 250))
        bright, dim = mgr.zones_lit()
        assert bright == 1
        assert dim == 0
        assert display.power == pytest.approx(1.0)  # 1/4 of 4 W

    def test_peripheral_windows_dim(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(
            display, peripheral_level=ZonedDisplay.DIM
        )
        mgr.place("video", Rect(0, 0, 300, 250))
        mgr.place("map", Rect(450, 350, 300, 200))
        mgr.set_focus("video")
        bright, dim = mgr.zones_lit()
        assert bright == 1 and dim == 1
        # 1 zone bright (1.0 W) + 1 zone dim (0.5 W).
        assert display.power == pytest.approx(1.5)

    def test_focus_change_swaps_illumination(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(display)
        mgr.place("a", Rect(0, 0, 300, 250))
        mgr.place("b", Rect(450, 350, 300, 200))
        mgr.set_focus("b")
        # b's zone (bottom-right, index 3) is bright now.
        assert display.zone_levels[3] == ZonedDisplay.BRIGHT
        assert display.zone_levels[0] == ZonedDisplay.DIM

    def test_focus_wins_shared_zones(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(display)
        mgr.place("a", Rect(0, 0, 300, 250), snap=False)
        mgr.place("b", Rect(100, 100, 150, 100), snap=False)  # same zone
        mgr.set_focus("a")
        assert display.zone_levels[0] == ZonedDisplay.BRIGHT

    def test_remove_window_releases_zones(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(
            display, peripheral_level=ZonedDisplay.OFF
        )
        mgr.place("solo", Rect(0, 0, 300, 250))
        mgr.remove("solo")
        assert display.power == 0.0
        assert mgr.focus is None

    def test_remove_focused_window_promotes_another(self):
        display = make_display(2, 2)
        mgr = ZonedWindowManager(display)
        mgr.place("a", Rect(0, 0, 300, 250))
        mgr.place("b", Rect(450, 350, 300, 200))
        mgr.remove("a")
        assert mgr.focus == "b"

    def test_set_focus_unknown_window_raises(self):
        mgr = ZonedWindowManager(make_display())
        with pytest.raises(KeyError):
            mgr.set_focus("ghost")


class TestValidation:
    def test_requires_zoned_display(self):
        stock = Display(4.0, 2.0)
        with pytest.raises(HardwareError):
            ZonedWindowManager(stock)

    def test_invalid_peripheral_level_rejected(self):
        with pytest.raises(HardwareError):
            ZonedWindowManager(make_display(), peripheral_level="strobe")


class TestEnergyImpact:
    def test_managed_display_saves_energy_vs_full_panel(self):
        """The §4.1 vision quantified: focus-only illumination cuts the
        display draw well below the fully lit panel."""
        display = make_display(2, 4)
        full_power = display.power  # all zones bright
        mgr = ZonedWindowManager(
            display, peripheral_level=ZonedDisplay.DIM
        )
        mgr.place("video", Rect(0, 0, 190, 290))
        mgr.place("map", Rect(210, 10, 180, 280))
        mgr.set_focus("video")
        assert display.power < 0.5 * full_power
