"""Unit tests for repro.obs.diff: spine extraction, alignment, energy."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.diff import (
    SpineEntry,
    decision_spine,
    diff_spines,
    diff_traces,
    read_spine_jsonl,
    window_energy,
    write_spine_jsonl,
)
from repro.obs.export import power_spans


def _clock():
    return 0.0


def _trace_decision(tracer, did, action, ts=None, span=None):
    ts = 0.5 * did if ts is None else ts
    args = {"did": did, "supply": 100.0, "demand": 50.0}
    if span is not None:
        args["power_span"] = span
    tracer.instant(ts, "core", f"decision.{action}", track="goal", args=args)
    return ts


def _trace_upcall(tracer, did, kind, app, level, ts=None):
    ts = 0.5 * did if ts is None else ts
    tracer.instant(ts, "core", f"upcall.{kind}", track=app,
                   args={"did": did, "application": app, "level": level})


class TestDecisionSpine:
    def test_extracts_decisions_with_attached_upcalls(self):
        tracer = Tracer(clock=_clock)
        _trace_decision(tracer, 1, "hold")
        _trace_decision(tracer, 2, "degrade")
        _trace_upcall(tracer, 2, "degrade", "video", "premiere-b")
        _trace_decision(tracer, 3, "upgrade")
        spine = decision_spine(tracer.events)
        assert [e.did for e in spine] == [1, 2, 3]
        assert spine[0].signature() == ("hold", (), False)
        assert spine[1].upcalls == (("degrade", "video", "premiere-b"),)
        assert spine[2].action == "upgrade"

    def test_upcalls_attach_by_did_not_position(self):
        # An upcall event arriving after a later decision still attaches
        # to the decision whose did it carries.
        tracer = Tracer(clock=_clock)
        _trace_decision(tracer, 1, "degrade")
        _trace_decision(tracer, 2, "hold")
        _trace_upcall(tracer, 1, "degrade", "web", "jpeg-50")
        spine = decision_spine(tracer.events)
        assert spine[0].upcalls == (("degrade", "web", "jpeg-50"),)
        assert spine[1].upcalls == ()

    def test_infeasible_flag_attaches(self):
        tracer = Tracer(clock=_clock)
        _trace_decision(tracer, 1, "degrade")
        tracer.instant(0.5, "core", "infeasible", track="goal",
                       args={"did": 1, "supply": 1.0, "demand": 9.0})
        spine = decision_spine(tracer.events)
        assert spine[0].infeasible

    def test_legacy_traces_without_did_fall_back_to_position(self):
        tracer = Tracer(clock=_clock)
        tracer.instant(0.5, "core", "decision.hold", track="goal",
                       args={"supply": 1.0, "demand": 0.5})
        tracer.instant(1.0, "core", "decision.degrade", track="goal",
                       args={"supply": 1.0, "demand": 2.0})
        tracer.instant(1.0, "core", "upcall.degrade", track="video",
                       args={"application": "video", "level": "b"})
        spine = decision_spine(tracer.events)
        assert [e.did for e in spine] == [1, 2]
        assert spine[1].upcalls == (("degrade", "video", "b"),)

    def test_non_core_events_ignored(self):
        tracer = Tracer(clock=_clock)
        tracer.counter(0.1, "power", "watts", 5.0, track="watts")
        _trace_decision(tracer, 1, "hold")
        tracer.instant(0.2, "sim", "dispatch", track="engine")
        assert len(decision_spine(tracer.events)) == 1

    def test_accepts_dict_records(self):
        records = [
            {"ts": 0.5, "wall": 0.0, "cat": "core", "name": "decision.hold",
             "ph": "I", "args": {"did": 1}},
        ]
        spine = decision_spine(records)
        assert spine[0].did == 1 and spine[0].action == "hold"


def _spine(signatures):
    """Build a spine from a list of action strings (or entry tuples)."""
    spine = []
    for index, item in enumerate(signatures):
        did = index + 1
        if isinstance(item, str):
            spine.append(SpineEntry(did, 0.5 * did, item))
        else:
            action, upcalls = item
            spine.append(SpineEntry(did, 0.5 * did, action, upcalls))
    return spine


class TestDiffSpines:
    def test_identical_spines_produce_no_windows(self):
        a = _spine(["hold", "degrade", "hold"])
        b = _spine(["hold", "degrade", "hold"])
        diff = diff_spines(a, b)
        assert diff.identical
        assert diff.windows == []
        assert diff.first_divergence is None

    def test_single_difference_is_one_single_decision_window(self):
        a = _spine(["hold", "hold", "hold"])
        b = _spine(["hold", "degrade", "hold"])
        diff = diff_spines(a, b)
        assert len(diff.windows) == 1
        window = diff.windows[0]
        assert (window.start_did, window.end_did) == (2, 2)
        assert window.t0 == 1.0
        assert window.t1 == 1.5  # next agreeing decision
        assert diff.divergent_decisions == 1

    def test_upcall_payload_differences_count(self):
        a = _spine([("degrade", [("degrade", "video", "b")])])
        b = _spine([("degrade", [("degrade", "web", "jpeg-50")])])
        assert len(diff_spines(a, b).windows) == 1

    def test_contiguous_divergence_merges_into_one_window(self):
        a = _spine(["hold", "hold", "hold", "hold", "hold"])
        b = _spine(["hold", "degrade", "degrade", "degrade", "hold"])
        diff = diff_spines(a, b)
        assert len(diff.windows) == 1
        assert (diff.windows[0].start_did, diff.windows[0].end_did) == (2, 4)

    def test_gap_merges_near_adjacent_windows(self):
        a = _spine(["hold"] * 7)
        b = _spine(["hold", "degrade", "hold", "hold", "degrade",
                    "hold", "hold"])
        assert len(diff_spines(a, b, gap=0).windows) == 2
        assert len(diff_spines(a, b, gap=1).windows) == 2
        merged = diff_spines(a, b, gap=2)
        assert len(merged.windows) == 1
        assert (merged.windows[0].start_did,
                merged.windows[0].end_did) == (2, 5)
        # The absorbed matching decisions appear on both sides.
        assert len(merged.windows[0].entries_a) == 4

    def test_one_sided_tail_is_divergent(self):
        a = _spine(["hold", "hold", "hold", "hold"])
        b = _spine(["hold", "hold"])
        diff = diff_spines(a, b)
        assert len(diff.windows) == 1
        window = diff.windows[0]
        assert (window.start_did, window.end_did) == (3, 4)
        assert len(window.entries_a) == 2
        assert window.entries_b == []

    def test_last_window_extends_to_last_recorded_decision(self):
        a = _spine(["hold", "hold", "degrade"])
        b = _spine(["hold", "hold", "hold"])
        window = diff_spines(a, b).windows[0]
        assert window.t0 == 1.5
        assert window.t1 == 1.5


class TestEnergyAttribution:
    def _power_trace(self, watts_by_second):
        """One power/span complete-event per second at the given watts."""
        tracer = Tracer(clock=_clock)
        for index, watts in enumerate(watts_by_second):
            tracer.complete(
                float(index), "power", "span", dur=1.0, track="machine",
                args={"sid": index + 1, "watts": watts,
                      "joules": watts * 1.0, "process": "Idle",
                      "procedure": "_kernel_idle"},
            )
        return list(tracer.events)

    def test_window_energy_prorates_partial_overlap(self):
        spans = power_spans(self._power_trace([10.0, 10.0, 10.0]))
        assert window_energy(spans, 0.0, 3.0) == pytest.approx(30.0)
        assert window_energy(spans, 0.5, 1.5) == pytest.approx(10.0)
        assert window_energy(spans, 2.75, 10.0) == pytest.approx(2.5)
        assert window_energy(spans, 5.0, 6.0) == 0.0

    def test_diff_traces_attributes_delta_per_window(self):
        # Both runs decide at t=0.5 and t=1.0; they disagree at t=1.0,
        # and run B draws 2 W more during the divergent window.
        events_a = self._power_trace([5.0, 5.0, 5.0])
        events_b = self._power_trace([5.0, 7.0, 7.0])
        tr_a = Tracer(clock=_clock)
        _trace_decision(tr_a, 1, "hold")
        _trace_decision(tr_a, 2, "hold")
        _trace_decision(tr_a, 3, "hold")
        tr_b = Tracer(clock=_clock)
        _trace_decision(tr_b, 1, "hold")
        _trace_decision(tr_b, 2, "upgrade")
        _trace_decision(tr_b, 3, "hold")
        events_a += [e.to_dict() for e in tr_a.events]
        events_b += [e.to_dict() for e in tr_b.events]
        diff = diff_traces(events_a, events_b)
        assert len(diff.windows) == 1
        window = diff.windows[0]
        # Window covers [1.0, 1.5): A draws 5 W, B draws 7 W.
        assert window.energy_a == pytest.approx(2.5)
        assert window.energy_b == pytest.approx(3.5)
        assert window.energy_delta == pytest.approx(1.0)

    def test_attribute_false_leaves_energy_unset(self):
        tr = Tracer(clock=_clock)
        _trace_decision(tr, 1, "hold")
        tr2 = Tracer(clock=_clock)
        _trace_decision(tr2, 1, "degrade")
        diff = diff_traces(tr.events, tr2.events, attribute=False)
        assert diff.windows[0].energy_delta is None


class TestSerialization:
    def test_to_dict_is_deterministic_and_wall_free(self):
        a = _spine(["hold", "degrade", "hold"])
        b = _spine(["hold", "upgrade", "hold"])
        one = json.dumps(diff_spines(a, b).to_dict(), sort_keys=True)
        two = json.dumps(diff_spines(a, b).to_dict(), sort_keys=True)
        assert one == two
        assert '"wall"' not in one

    def test_render_mentions_first_divergence_and_energy(self):
        a = _spine(["hold", "degrade"])
        b = _spine(["hold", "upgrade"])
        diff = diff_spines(a, b)
        for window in diff.windows:
            window.energy_a, window.energy_b = 1.0, 3.5
            window.energy_delta = 2.5
        text = diff.render()
        assert "first divergence at decision 2" in text
        assert "delta +2.5 J" in text

    def test_render_identical(self):
        a = _spine(["hold"])
        text = diff_spines(a, a).render()
        assert "identical" in text

    def test_render_caps_window_list(self):
        a = _spine(["hold", "degrade"] * 30)
        b = _spine(["hold", "upgrade"] * 30)
        text = diff_spines(a, b).render(max_windows=3)
        assert "more window(s)" in text

    def test_energy_share_surfaced_in_json_schema(self):
        """``repro diff --json`` dumps ``to_dict()``; the run-level
        energy attribution must be in it.  Schema-locked: these exact
        keys, these exact semantics — a rename breaks consumers."""
        watts_a, watts_b = [5.0, 5.0, 5.0], [5.0, 7.0, 7.0]
        events_a = TestEnergyAttribution._power_trace(None, watts_a)
        events_b = TestEnergyAttribution._power_trace(None, watts_b)
        tr_a = Tracer(clock=_clock)
        tr_b = Tracer(clock=_clock)
        for did, (act_a, act_b) in enumerate(
                [("hold", "hold"), ("hold", "upgrade"), ("hold", "hold")],
                start=1):
            _trace_decision(tr_a, did, act_a)
            _trace_decision(tr_b, did, act_b)
        events_a += [e.to_dict() for e in tr_a.events]
        events_b += [e.to_dict() for e in tr_b.events]
        payload = diff_traces(events_a, events_b).to_dict()
        assert payload["total_energy_a"] == pytest.approx(sum(watts_a))
        assert payload["total_energy_b"] == pytest.approx(sum(watts_b))
        assert payload["total_energy_delta"] == pytest.approx(4.0)
        # Divergent window [1.0, 1.5): B spends 3.5 J of its 19 J run.
        assert payload["energy_share"] == pytest.approx(3.5 / 19.0)
        # Stable on a round-trip through JSON bytes.
        assert json.loads(json.dumps(payload)) == payload

    def test_unattributed_diff_omits_energy_keys(self):
        """Without energy attribution the run-level keys stay absent —
        consumers distinguish "no data" from "zero joules"."""
        a = _spine(["hold", "degrade"])
        b = _spine(["hold", "upgrade"])
        payload = diff_spines(a, b).to_dict()
        for key in ("total_energy_a", "total_energy_b",
                    "total_energy_delta", "energy_share"):
            assert key not in payload

    def test_identical_attributed_diff_has_zero_share(self):
        events = TestEnergyAttribution._power_trace(None, [5.0, 5.0])
        tr = Tracer(clock=_clock)
        _trace_decision(tr, 1, "hold")
        events += [e.to_dict() for e in tr.events]
        payload = diff_traces(list(events), list(events)).to_dict()
        assert payload["total_energy_delta"] == 0.0
        assert payload["energy_share"] == 0.0

    def test_spine_jsonl_round_trip(self, tmp_path):
        spine = [
            SpineEntry(1, 0.5, "hold"),
            SpineEntry(2, 1.0, "degrade",
                       upcalls=[("degrade", "video", "premiere-b")]),
            SpineEntry(3, 1.5, "degrade", infeasible=True),
        ]
        path = tmp_path / "spine.jsonl"
        assert write_spine_jsonl(spine, path) == 3
        loaded = read_spine_jsonl(path)
        assert loaded == spine
        assert loaded[1].upcalls == (("degrade", "video", "premiere-b"),)
        assert loaded[2].infeasible


class TestEndToEnd:
    def test_traced_goal_runs_diff_on_hysteresis(self):
        """Hysteresis on/off goal runs must diverge with energy deltas."""
        from repro.experiments import run_goal_experiment
        from repro.obs import installed

        def run(**kwargs):
            tracer = Tracer()
            with installed(tracer):
                run_goal_experiment(197.0, initial_energy=3000.0, **kwargs)
            tracer.flush()
            return list(tracer.events)

        events_on = run()
        events_off = run(variable_fraction=0.0, constant_fraction=0.0)
        diff = diff_traces(events_on, events_off,
                           label_a="hysteresis-on", label_b="hysteresis-off")
        assert not diff.identical
        assert diff.first_divergence is not None
        assert all(w.energy_delta is not None for w in diff.windows)
        # The divergent windows carry real, nonzero energy attribution.
        assert any(abs(w.energy_delta) > 1e-9 for w in diff.windows)
        # Removing the margin changes what the policy delivers: the two
        # runs fire different upcall sequences, not just different
        # verdict labels.
        upcalls = lambda spine: [u for e in spine for u in e.upcalls]
        assert upcalls(diff.spine_b) != upcalls(diff.spine_a)
