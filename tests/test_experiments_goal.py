"""Integration tests for goal-directed adaptation (Figures 19-22).

Scaled-down energies keep each trial to a few simulated minutes; the
full-scale sweeps live in benchmarks/.
"""

import pytest

from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_bursty_experiment,
    run_goal_experiment,
)

ENERGY = 5_000.0  # small supply -> short experiments (paper used 12 kJ)


@pytest.fixture(scope="module")
def bounds():
    return fidelity_runtime_bounds(ENERGY)


class TestRuntimeBounds:
    def test_lowest_fidelity_outlasts_highest(self, bounds):
        t_hi, t_lo = bounds
        assert t_lo > t_hi * 1.1

    def test_derive_goals_bracket_bounds(self, bounds):
        t_hi, t_lo = bounds
        goals = derive_goals(t_hi, t_lo)
        assert len(goals) == 4
        assert goals[0] > t_hi          # tightest goal needs adaptation
        assert goals[-1] < t_lo         # loosest goal stays feasible
        assert goals == sorted(goals)

    def test_derive_single_goal(self, bounds):
        t_hi, t_lo = bounds
        assert len(derive_goals(t_hi, t_lo, count=1)) == 1


class TestGoalDirectedAdaptation:
    def test_every_derived_goal_is_met(self, bounds):
        """The paper's headline: the desired goal was met in every trial."""
        goals = derive_goals(*bounds)
        for goal in goals:
            result = run_goal_experiment(goal, initial_energy=ENERGY)
            assert result.goal_met, f"missed goal {goal:.0f}s"

    def test_residual_energy_is_small(self, bounds):
        """Paper: largest residue was ~1-2% of the initial energy."""
        goals = derive_goals(*bounds)
        result = run_goal_experiment(goals[1], initial_energy=ENERGY)
        assert result.goal_met
        assert result.residual_energy < 0.08 * ENERGY

    def test_low_priority_apps_degrade_first(self, bounds):
        """Figure 19: web stays near max fidelity; speech near min."""
        goals = derive_goals(*bounds)
        result = run_goal_experiment(goals[0], initial_energy=ENERGY)
        fidelity = {}
        for record in result.timeline.category("fidelity"):
            fidelity[record.label] = record.value[1]  # normalized
        assert result.goal_met
        assert fidelity["web"] >= fidelity["speech"]

    def test_demand_tracks_supply(self, bounds):
        """Figure 19 top graph: estimated demand tracks supply closely."""
        goals = derive_goals(*bounds)
        result = run_goal_experiment(goals[1], initial_energy=ENERGY)
        _t, supply = result.timeline.series("energy", "supply")
        _t, demand = result.timeline.series("energy", "demand")
        # Compare trailing halves (the estimator needs warm-up).
        half = len(supply) // 2
        for s, d in zip(supply[half:], demand[half:]):
            assert d <= s * 1.15 + 30.0

    def test_infeasible_goal_reported_and_missed(self, bounds):
        _t_hi, t_lo = bounds
        result = run_goal_experiment(t_lo * 1.5, initial_energy=ENERGY)
        assert not result.goal_met
        assert result.infeasible_reported

    def test_trivial_goal_keeps_high_fidelity(self, bounds):
        t_hi, _t_lo = bounds
        result = run_goal_experiment(t_hi * 0.4, initial_energy=ENERGY)
        assert result.goal_met
        final = {}
        for record in result.timeline.category("fidelity"):
            final[record.label] = record.value[1]
        assert final["web"] == 1.0
        assert final["video"] >= 0.75

    def test_goal_extension_mid_run(self, bounds):
        """Figure 22's scenario: the user extends the goal mid-run."""
        t_hi, t_lo = bounds
        base_goal = t_hi * 1.02
        extension = (base_goal * 0.3, t_lo * 0.9 - base_goal)
        result = run_goal_experiment(
            base_goal, initial_energy=ENERGY, extensions=[extension]
        )
        assert result.goal_seconds == pytest.approx(base_goal + extension[1])
        assert result.goal_met

    def test_adaptation_counts_by_app(self, bounds):
        goals = derive_goals(*bounds)
        result = run_goal_experiment(goals[0], initial_energy=ENERGY)
        assert set(result.adaptations) == {"speech", "video", "map", "web"}
        assert result.total_adaptations > 0


class TestHalflifeSensitivity:
    def test_shorter_halflife_adapts_more(self, bounds):
        """Figure 21: a 1% half-life is unstable (most adaptations)."""
        goals = derive_goals(*bounds)
        counts = {}
        for halflife in (0.01, 0.10):
            result = run_goal_experiment(
                goals[1], initial_energy=ENERGY, halflife_fraction=halflife
            )
            counts[halflife] = result.total_adaptations
        assert counts[0.01] > counts[0.10]


class TestBurstyWorkload:
    def test_bursty_goal_met_with_sized_energy(self):
        result = run_bursty_experiment(seed=1, goal_seconds=480.0)
        assert result.goal_met
        assert result.residual_energy >= 0.0

    def test_bursty_with_extension(self):
        result = run_bursty_experiment(
            seed=2, goal_seconds=360.0, extension=(120.0, 120.0)
        )
        assert result.goal_seconds == pytest.approx(480.0)
        assert result.goal_met

    def test_bursty_trials_differ_by_seed(self):
        a = run_bursty_experiment(seed=1, goal_seconds=360.0)
        b = run_bursty_experiment(seed=5, goal_seconds=360.0)
        assert a.residual_energy != pytest.approx(b.residual_energy, rel=1e-6)

    def test_bursty_deterministic_per_seed(self):
        a = run_bursty_experiment(seed=3, goal_seconds=300.0)
        b = run_bursty_experiment(seed=3, goal_seconds=300.0)
        assert a.residual_energy == pytest.approx(b.residual_energy)
        assert a.adaptations == b.adaptations
