"""Exit-code regression tests: partially failed campaigns exit nonzero.

Historically a sweep with a permanently failed task crashed the table
renderer (KeyError on the missing cell) before the telemetry file was
written, instead of printing a partial table and exiting 1.  These
tests pin the intended behaviour for ``repro sweep`` and the service
path's ``repro submit --wait``.
"""

import json
import threading

import pytest

from repro import cli
from repro.fleet import CampaignSpec, FleetRunner, Task
from repro.fleet.campaigns import tables_from_result
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER


def partial_failure_result():
    """A sweep-shaped campaign with one permanently failed cell."""
    spec = CampaignSpec(
        name="sweep",
        tasks=(
            Task(id="video/base/clipA",
                 fn="repro.fleet.library:seeded_value", params={"seed": 1}),
            Task(id="video/base/clipB",
                 fn="repro.fleet.library:seeded_value", params={"seed": 2}),
            Task(id="video/premium/clipA",
                 fn="repro.fleet.library:always_fail",
                 params={"message": "cell exploded"}),
            Task(id="video/premium/clipB",
                 fn="repro.fleet.library:seeded_value", params={"seed": 3}),
        ),
    )
    runner = FleetRunner(jobs=1, retries=0, tracer=NULL_TRACER,
                         metrics=MetricsRegistry())
    return runner.run(spec)


class TestSweepExitCode:
    @pytest.fixture
    def patched_sweep(self, monkeypatch):
        result = partial_failure_result()
        tables = tables_from_result(result)

        def fake_run_sweep(**kwargs):
            return tables, result

        import repro.fleet

        monkeypatch.setattr(repro.fleet, "run_sweep", fake_run_sweep)
        return result

    def test_partial_failure_exits_nonzero(self, patched_sweep, capsys):
        code = cli.main(["sweep"])
        assert code == 1
        out = capsys.readouterr().out
        # The failure is reported, and the incomplete cell renders as
        # "-" instead of crashing the table.
        assert "FAILED video/premium/clipA" in out
        assert "cell exploded" in out
        assert "-" in out

    def test_partial_failure_still_writes_telemetry(self, patched_sweep,
                                                    tmp_path, capsys):
        telemetry_path = tmp_path / "telemetry.json"
        code = cli.main(["sweep", "--telemetry-out", str(telemetry_path)])
        assert code == 1
        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["failed"] == 1
        assert telemetry["succeeded"] == 3

    def test_all_green_sweep_exits_zero(self, monkeypatch, tmp_path):
        spec = CampaignSpec(
            name="sweep",
            tasks=(
                Task(id="video/base/clipA",
                     fn="repro.fleet.library:seeded_value",
                     params={"seed": 1}),
            ),
        )
        result = FleetRunner(jobs=1, tracer=NULL_TRACER,
                             metrics=MetricsRegistry()).run(spec)
        tables = tables_from_result(result)
        import repro.fleet

        monkeypatch.setattr(repro.fleet, "run_sweep",
                            lambda **kw: (tables, result))
        results_path = tmp_path / "results.json"
        code = cli.main(["sweep", "--results-out", str(results_path)])
        assert code == 0
        document = json.loads(results_path.read_text())
        assert document["campaign"] == "sweep"
        assert set(document["values"]) == {"video/base/clipA"}


@pytest.fixture
def service_endpoint(tmp_path):
    """A live service + HTTP server for CLI-level submit tests."""
    from repro.service import CampaignService, serve

    service = CampaignService(workers=1, cache=tmp_path / "cache",
                              poll_s=0.02, backoff_s=0.01,
                              tracer=NULL_TRACER, metrics=MetricsRegistry())
    with service:
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server.endpoint
        finally:
            server.shutdown()
            server.server_close()
            thread.join(2.0)


class TestSubmitExitCode:
    def write_spec(self, tmp_path, tasks):
        spec = CampaignSpec(name="cli-spec", tasks=tasks)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return str(path)

    def test_failed_job_exits_nonzero(self, service_endpoint, tmp_path,
                                      capsys):
        spec_path = self.write_spec(tmp_path, (
            Task(id="bad", fn="repro.fleet.library:always_fail",
                 params={"message": "nope"}),
        ))
        telemetry_path = tmp_path / "telemetry.json"
        code = cli.main([
            "submit", "--spec", spec_path, "--endpoint", service_endpoint,
            "--wait", "--retries", "0",
            "--telemetry-out", str(telemetry_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED bad" in out
        telemetry = json.loads(telemetry_path.read_text())
        assert telemetry["failed"] == 1

    def test_successful_job_exits_zero(self, service_endpoint, tmp_path):
        spec_path = self.write_spec(tmp_path, (
            Task(id="fine", fn="repro.fleet.library:seeded_value",
                 params={"seed": 4}),
        ))
        results_path = tmp_path / "results.json"
        code = cli.main([
            "submit", "--spec", spec_path, "--endpoint", service_endpoint,
            "--wait", "--results-out", str(results_path),
        ])
        assert code == 0
        document = json.loads(results_path.read_text())
        assert document["campaign"] == "cli-spec"

    def test_unreachable_service_exits_two(self, tmp_path):
        spec_path = self.write_spec(tmp_path, (
            Task(id="fine", fn="repro.fleet.library:seeded_value",
                 params={"seed": 4}),
        ))
        code = cli.main([
            "submit", "--spec", spec_path,
            "--endpoint", "http://127.0.0.1:1", "--wait",
        ])
        assert code == 2
