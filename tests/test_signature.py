"""Energy signatures: determinism, sensitivity, and the CLI gate.

A signature must be a pure function of the traced event payloads
(identical across runs and indifferent to wall-clock), verify cleanly
against itself and against the committed golden, and *fail* — naming
the offending phase — when the power accounting moves while behaviour
does not.
"""

import copy
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.obs.export import write_events_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.signature import (
    SignatureError,
    compute_signature,
    diff_signatures,
    read_signature,
    verify_signature,
    write_signature,
)
from tests.golden_scenarios import run_scenario_events, signature_path


@pytest.fixture(scope="module")
def pulse_events():
    """One traced goal-pulse run (the scenario with a committed
    ``goal-pulse.sig.json`` golden)."""
    return run_scenario_events("goal-pulse")


@pytest.fixture(scope="module")
def pulse_signature(pulse_events):
    return compute_signature(pulse_events)


def _perturb_power(events, factor, t0, t1):
    """Scale power spans overlapping [t0, t1) — a hot power table."""
    perturbed = []
    for event in events:
        record = copy.deepcopy(event.to_dict())
        if (record.get("cat") == "power" and record.get("name") == "span"
                and record["ts"] < t1
                and record["ts"] + record.get("dur", 0.0) > t0):
            args = record["args"]
            args["watts"] *= factor
            for name in list(args.get("components") or ()):
                args["components"][name] *= factor
        perturbed.append(record)
    return perturbed


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_signature_deterministic_across_runs(pulse_events, pulse_signature):
    rerun = compute_signature(run_scenario_events("goal-pulse"))
    assert json.dumps(rerun, sort_keys=True) == json.dumps(
        pulse_signature, sort_keys=True)


def test_signature_ignores_wall_clock(pulse_events, pulse_signature):
    """Wall stamps differ every run; the signature must not see them."""
    shifted = []
    for event in pulse_events:
        record = copy.deepcopy(event.to_dict())
        record["wall"] = record.get("wall", 0.0) + 1e6
        shifted.append(record)
    assert json.dumps(compute_signature(shifted), sort_keys=True) == (
        json.dumps(pulse_signature, sort_keys=True))


def test_signature_json_roundtrip(tmp_path, pulse_signature):
    path = os.path.join(str(tmp_path), "pulse.sig.json")
    write_signature(pulse_signature, path)
    assert read_signature(path) == pulse_signature


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------
def test_self_verify_clean(pulse_events, pulse_signature):
    diff = verify_signature(pulse_events, pulse_signature)
    assert diff.behaviour_match
    assert not diff.regression
    assert diff.shape_distance == 0.0
    assert diff.first_offender is None


def test_verify_against_committed_golden(pulse_events):
    """The acceptance check: an unmodified run passes the committed
    golden."""
    golden = read_signature(signature_path("goal-pulse"))
    diff = verify_signature(pulse_events, golden)
    assert not diff.regression, "\n" + diff.render()


def test_perturbed_power_table_flags_phase(pulse_events, pulse_signature):
    """Same decisions, hotter watts mid-run: behaviour matches, energy
    does not, and the offending phase carries a nonzero delta."""
    t0, t1 = pulse_signature["t0"], pulse_signature["t1"]
    window = (t0 + 0.3 * (t1 - t0), t0 + 0.5 * (t1 - t0))
    perturbed = _perturb_power(pulse_events, 1.4, *window)
    diff = verify_signature(perturbed, pulse_signature)
    assert diff.behaviour_match, "perturbation must not move the spine"
    assert diff.regression
    offenders = diff.out_of_band
    assert offenders and all(p["delta_j"] != 0.0 for p in offenders)
    assert diff.first_offender == offenders[0]["id"]


def test_committed_goldens_disagree_on_behaviour():
    """Hysteresis-off decides differently: its signature must be a
    behaviour-mismatch regression against the default golden."""
    default = read_signature(signature_path("goal-default"))
    no_hyst = read_signature(signature_path("goal-hysteresis-off"))
    diff = diff_signatures(default, no_hyst)
    assert not diff.behaviour_match
    assert diff.regression


def test_tolerance_bands_loosen(pulse_events, pulse_signature):
    t0, t1 = pulse_signature["t0"], pulse_signature["t1"]
    perturbed = _perturb_power(pulse_events, 1.04, t0, t1)
    strict = verify_signature(perturbed, pulse_signature,
                              rel_tolerance=0.001, abs_tolerance_j=0.001)
    loose = verify_signature(perturbed, pulse_signature,
                             rel_tolerance=0.10, abs_tolerance_j=2.0)
    assert strict.regression
    assert not loose.regression


def test_empty_stream_rejected():
    with pytest.raises(SignatureError):
        compute_signature([])


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_signature_metrics(pulse_events, pulse_signature):
    registry = MetricsRegistry()
    compute_signature(pulse_events, metrics=registry)
    snapshot = registry.snapshot()
    assert snapshot["gauges"]["signature.phase_count"] == (
        pulse_signature["phase_count"])
    assert snapshot["histograms"]["signature.compute_s"]["count"] == 1

    tampered = copy.deepcopy(pulse_signature)
    tampered["phases"][0]["joules"] += 500.0
    verify_signature(pulse_events, tampered, metrics=registry)
    assert registry.snapshot()["counters"]["signature.verify_failures"] == 1


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------
def test_cli_verify_profile_exit_codes(tmp_path, capsys, pulse_events,
                                       pulse_signature):
    run_path = os.path.join(str(tmp_path), "run.jsonl")
    write_events_jsonl(pulse_events, run_path)
    sig_path = os.path.join(str(tmp_path), "golden.sig.json")
    write_signature(pulse_signature, sig_path)

    assert cli_main(["verify-profile", run_path,
                     "--against", sig_path]) == 0
    out = capsys.readouterr().out
    assert "verdict: clean" in out

    tampered = copy.deepcopy(pulse_signature)
    tampered["phases"][0]["joules"] += 500.0
    bad_path = os.path.join(str(tmp_path), "tampered.sig.json")
    write_signature(tampered, bad_path)
    report_path = os.path.join(str(tmp_path), "report.json")
    assert cli_main(["verify-profile", run_path, "--against", bad_path,
                     "--json", report_path,
                     "--fail-on-regression"]) == 1
    out = capsys.readouterr().out
    assert "verdict: REGRESSION" in out
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["regression"] and report["first_offender"]

    missing = os.path.join(str(tmp_path), "missing.sig.json")
    assert cli_main(["verify-profile", run_path,
                     "--against", missing]) == 2
    not_a_sig = os.path.join(str(tmp_path), "plain.json")
    with open(not_a_sig, "w", encoding="utf-8") as handle:
        handle.write("{}\n")
    assert cli_main(["verify-profile", run_path,
                     "--against", not_a_sig]) == 2
