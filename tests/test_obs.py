"""Unit tests for repro.obs: the tracer and the metrics registry."""

import pytest

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    current_tracer,
    install,
    installed,
    uninstall,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTracer:
    def test_events_carry_both_timestamps(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.t += 1.5
        event = tracer.instant(42.0, "sim", "dispatch", track="engine")
        assert event.ts == 42.0
        assert event.wall == pytest.approx(1.5)
        assert event.ph == "I"

    def test_to_dict_omits_unset_fields(self):
        tracer = Tracer(clock=FakeClock())
        record = tracer.instant(1.0, "sim", "x").to_dict()
        assert "track" not in record and "dur" not in record
        assert "args" not in record
        record = tracer.complete(1.0, "power", "span", dur=0.5,
                                 track="machine", args={"sid": 1}).to_dict()
        assert record["dur"] == 0.5
        assert record["args"] == {"sid": 1}

    def test_counter_wraps_value(self):
        tracer = Tracer(clock=FakeClock())
        event = tracer.counter(2.0, "power", "watts", 10.5, track="watts")
        assert event.ph == "C"
        assert event.args == {"value": 10.5}

    def test_ring_buffer_keeps_recent_and_counts_dropped(self):
        tracer = Tracer(capacity=3, clock=FakeClock())
        for k in range(5):
            tracer.instant(float(k), "sim", "e")
        assert len(tracer) == 3
        assert [e.ts for e in tracer] == [2.0, 3.0, 4.0]
        assert tracer.dropped == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_category_filter_gates(self):
        tracer = Tracer(categories={"core"}, clock=FakeClock())
        assert tracer.gate("core") is tracer
        assert tracer.gate("sim") is None
        unrestricted = Tracer(clock=FakeClock())
        assert unrestricted.gate("anything") is unrestricted

    def test_flush_hooks_run_once_per_flush(self):
        tracer = Tracer(clock=FakeClock())
        calls = []
        tracer.add_flush_hook(lambda: calls.append(1))
        tracer.flush()
        tracer.flush()
        assert calls == [1, 1]

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.gate("sim") is None
        assert NULL_TRACER.instant(0.0, "sim", "x") is None
        assert NULL_TRACER.wall() == 0.0
        assert len(NULL_TRACER) == 0
        assert list(NULL_TRACER) == []
        assert not NullTracer.enabled and Tracer.enabled


class TestInstall:
    def teardown_method(self):
        uninstall()

    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_install_and_uninstall(self):
        tracer = Tracer()
        previous = install(tracer)
        assert previous is NULL_TRACER
        assert current_tracer() is tracer
        uninstall()
        assert current_tracer() is NULL_TRACER

    def test_installed_context_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        install(outer)
        with installed(inner) as active:
            assert active is inner
            assert current_tracer() is inner
        assert current_tracer() is outer

    def test_installed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with installed(Tracer()):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        gauge = registry.gauge("g")
        gauge.set(2.5)
        assert gauge.value == 2.5
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.5)
        assert hist.count == 1 and hist.mean == 0.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert "x" in registry and len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_bucket_edges(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(1.0)    # == bound: lands in the first bucket
        hist.observe(1.001)  # just past it: second bucket
        hist.observe(99.0)   # overflow bucket
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.total == pytest.approx(101.001)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["buckets"] == [1.0]
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 0.5

    def test_default_buckets_strictly_increasing(self):
        assert all(a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.reset()
        assert len(registry) == 0

    def test_repr_smoke(self):
        assert "c=1" in repr(Counter("c")) or "c" in repr(Counter("c"))
        assert "Gauge" in repr(Gauge("g"))
        assert "Histogram" in repr(Histogram("h"))


class TestJsonlSink:
    def _emit_n(self, tracer, n):
        for k in range(n):
            tracer.instant(float(k), "sim", "e", track="engine",
                           args={"seq": k})

    def test_sink_receives_events_the_ring_drops(self, tmp_path):
        from repro.obs import JsonlSink
        from repro.obs.export import read_events_jsonl

        path = tmp_path / "stream.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer(capacity=3, sink=sink, clock=FakeClock())
            self._emit_n(tracer, 10)
            tracer.flush()
        assert len(tracer) == 3  # ring kept only the suffix...
        assert tracer.dropped == 7
        records = read_events_jsonl(path)
        assert len(records) == 10  # ...but the sink kept everything
        assert [r["args"]["seq"] for r in records] == list(range(10))

    def test_ring_and_streaming_modes_produce_identical_jsonl(self, tmp_path):
        """For a bounded run, streaming through a ring-buffered tracer
        writes byte-for-byte what an unbounded tracer exports."""
        from repro.obs import JsonlSink
        from repro.obs.export import write_events_jsonl

        streamed = tmp_path / "streamed.jsonl"
        with JsonlSink(streamed) as sink:
            ring = Tracer(capacity=4, sink=sink, clock=FakeClock())
            self._emit_n(ring, 25)
            ring.flush()

        unbounded = Tracer(clock=FakeClock())
        self._emit_n(unbounded, 25)
        buffered = tmp_path / "buffered.jsonl"
        write_events_jsonl(unbounded.events, buffered)

        assert streamed.read_bytes() == buffered.read_bytes()

    def test_flush_flushes_sink(self, tmp_path):
        from repro.obs import JsonlSink

        path = tmp_path / "stream.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink=sink, clock=FakeClock())
        tracer.instant(0.0, "sim", "e")
        tracer.flush()
        # Readable before close: flush() pushed it to disk.
        assert path.read_text().count("\n") == 1
        sink.close()

    def test_sink_count_tracks_writes(self, tmp_path):
        from repro.obs import JsonlSink

        with JsonlSink(tmp_path / "s.jsonl") as sink:
            tracer = Tracer(sink=sink, clock=FakeClock())
            self._emit_n(tracer, 5)
            assert sink.count == 5
