"""Crash recovery: kill a worker mid-task, assert reclaim + determinism.

The scenarios the warm pool's heartbeat/reclaim machinery exists for:

* a worker process *dies* mid-task (``os._exit`` via ``die_once_then``)
  — detected by process exit, the attempt requeued, a replacement
  spawned, and the campaign's final results byte-identical to a run
  where nothing died;
* a worker process *wedges* mid-task (``SIGSTOP``) — detected by the
  stale heartbeat, then the same reclaim path.
"""

import os
import signal
import time

from repro.fleet import CampaignSpec, FleetRunner, Task
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service import CampaignService, results_document


def dying_spec(marker_dir, n=3, name="lazarus"):
    """A campaign whose first task kills its worker on first attempt."""
    tasks = [
        Task(id="t0", fn="repro.fleet.library:die_once_then",
             params={"marker": os.path.join(str(marker_dir), "died"),
                     "fn": "repro.fleet.library:seeded_value", "seed": 0}),
    ]
    tasks += [
        Task(id=f"t{i}", fn="repro.fleet.library:seeded_value",
             params={"seed": i})
        for i in range(1, n)
    ]
    return CampaignSpec(name=name, tasks=tasks)


def reference_spec(marker_dir, n=3, name="lazarus"):
    """The same campaign with the marker pre-created: nothing dies."""
    marker = os.path.join(str(marker_dir), "died")
    with open(marker, "w", encoding="utf-8") as fh:
        fh.write("pre-created\n")
    return dying_spec(marker_dir, n=n, name=name)


class TestWorkerDeath:
    def test_death_is_reclaimed_and_result_bit_identical(self, tmp_path):
        """The acceptance criterion: worker death never changes bytes."""
        ref_dir = tmp_path / "ref"
        ref_dir.mkdir()
        reference = FleetRunner(jobs=1, tracer=NULL_TRACER,
                                metrics=MetricsRegistry()).run(
            reference_spec(ref_dir))
        assert reference.ok

        die_dir = tmp_path / "die"
        die_dir.mkdir()
        metrics = MetricsRegistry()
        svc = CampaignService(workers=2, cache=tmp_path / "cache",
                              poll_s=0.02, backoff_s=0.01,
                              heartbeat_s=0.05, heartbeat_timeout_s=2.0,
                              tracer=NULL_TRACER, metrics=metrics)
        with svc:
            job_id = svc.submit(dying_spec(die_dir))
            status = svc.wait(job_id, timeout=60)
            result = svc.result(job_id)
            snapshot = svc.snapshot()

        assert status["state"] == "done"
        # The death burned one attempt and was retried.
        assert status["telemetry"]["retried"] >= 1
        assert status["telemetry"]["attempts"] >= 4
        # The pool noticed, reclaimed, and replaced the worker.
        assert snapshot["reclaimed_workers"] >= 1
        assert snapshot["workers"] == 2
        assert metrics.counter("service.tasks_reclaimed").value >= 1
        # Bit-identical to the run where nothing died.
        assert (results_document(result["campaign"], result["values"])
                == results_document(reference.spec.name, reference.values))

    def test_recovered_result_lands_in_cache(self, tmp_path):
        """A resubmission after recovery is served from cache."""
        die_dir = tmp_path / "die"
        die_dir.mkdir()
        svc = CampaignService(workers=2, cache=tmp_path / "cache",
                              poll_s=0.02, backoff_s=0.01,
                              tracer=NULL_TRACER, metrics=MetricsRegistry())
        with svc:
            spec = dying_spec(die_dir)
            j1 = svc.submit(spec)
            svc.wait(j1, timeout=60)
            first = svc.result(j1)
            j2 = svc.submit(spec)
            status = svc.wait(j2, timeout=60)
            second = svc.result(j2)
        assert first["values"] == second["values"]
        assert status["telemetry"]["from_cache"] is True
        assert status["telemetry"]["cached"] == 3


class TestWedgedWorker:
    def test_stale_heartbeat_triggers_reclaim(self, tmp_path):
        """SIGSTOP a worker mid-task: stale heartbeat → reclaim → retry."""
        spec = CampaignSpec(
            name="wedged",
            tasks=(
                Task(id="slow", fn="repro.fleet.library:sleep_for",
                     params={"seconds": 1.5, "value": 9.0}),
            ),
        )
        metrics = MetricsRegistry()
        svc = CampaignService(workers=2, poll_s=0.02, backoff_s=0.01,
                              heartbeat_s=0.05, heartbeat_timeout_s=0.5,
                              tracer=NULL_TRACER, metrics=metrics)
        with svc:
            job_id = svc.submit(spec, retries=1)
            # Wait until some worker holds the task, then freeze it.
            victim = None
            deadline = time.monotonic() + 10
            while victim is None and time.monotonic() < deadline:
                for worker in svc.workers():
                    if worker["current"] is not None:
                        victim = worker
                        break
                time.sleep(0.02)
            assert victim is not None, "task never dispatched"
            os.kill(victim["pid"], signal.SIGSTOP)
            status = svc.wait(job_id, timeout=45)
            snapshot = svc.snapshot()
        assert status["state"] == "done"
        assert svc.result(job_id)["values"]["slow"] == 9.0
        assert status["telemetry"]["retried"] >= 1
        assert snapshot["reclaimed_workers"] >= 1
        assert metrics.counter("service.tasks_reclaimed").value >= 1
