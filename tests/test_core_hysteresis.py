"""Edge-case tests for the AdaptationTrigger hysteresis (Section 5.1.3)."""

import pytest

from repro.core.hysteresis import DEGRADE, HOLD, UPGRADE, AdaptationTrigger


class TestValidation:
    def test_initial_energy_must_be_positive(self):
        with pytest.raises(ValueError):
            AdaptationTrigger(0.0)
        with pytest.raises(ValueError):
            AdaptationTrigger(-10.0)

    def test_fractions_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            AdaptationTrigger(100.0, variable_fraction=-0.01)
        with pytest.raises(ValueError):
            AdaptationTrigger(100.0, constant_fraction=-0.01)

    def test_safety_fraction_range(self):
        with pytest.raises(ValueError):
            AdaptationTrigger(100.0, safety_fraction=-0.1)
        with pytest.raises(ValueError):
            AdaptationTrigger(100.0, safety_fraction=1.0)
        AdaptationTrigger(100.0, safety_fraction=0.0)  # boundary ok
        AdaptationTrigger(100.0, safety_fraction=0.999)


class TestDegradeBoundary:
    def test_demand_above_residual_degrades(self):
        trigger = AdaptationTrigger(1000.0)
        assert trigger.decide(501.0, 500.0) == DEGRADE

    def test_demand_equal_residual_holds(self):
        # Strictly-greater comparison: equality is not yet a crisis.
        trigger = AdaptationTrigger(1000.0)
        assert trigger.decide(500.0, 500.0) == HOLD

    def test_safety_fraction_shifts_the_boundary(self):
        trigger = AdaptationTrigger(1000.0, safety_fraction=0.03)
        # Demand compared against 97% of residual.
        assert trigger.decide(971.0, 1000.0) == DEGRADE
        assert trigger.decide(970.0, 1000.0) == HOLD


class TestUpgradeMargin:
    def test_margin_is_variable_plus_constant(self):
        trigger = AdaptationTrigger(
            1000.0, variable_fraction=0.05, constant_fraction=0.01
        )
        # 5% of residual + 1% of initial = 25 + 10 = 35 J at residual 500.
        assert trigger.upgrade_margin(500.0) == pytest.approx(35.0)

    def test_negative_residual_contributes_no_variable_margin(self):
        trigger = AdaptationTrigger(
            1000.0, variable_fraction=0.05, constant_fraction=0.01
        )
        assert trigger.upgrade_margin(-50.0) == pytest.approx(10.0)

    def test_surplus_equal_to_margin_holds(self):
        trigger = AdaptationTrigger(
            1000.0, variable_fraction=0.05, constant_fraction=0.01
        )
        residual = 500.0
        margin = trigger.upgrade_margin(residual)
        assert trigger.decide(residual - margin, residual) == HOLD

    def test_surplus_above_margin_upgrades(self):
        trigger = AdaptationTrigger(
            1000.0, variable_fraction=0.05, constant_fraction=0.01
        )
        residual = 500.0
        margin = trigger.upgrade_margin(residual)
        assert trigger.decide(residual - margin - 0.01, residual) == UPGRADE

    def test_scarce_energy_biases_against_upgrades(self):
        # The variable component shrinks with residual, but the constant
        # component (1% of *initial*) keeps a floor, so at low residual a
        # proportionally identical surplus no longer triggers an upgrade.
        trigger = AdaptationTrigger(
            10_000.0, variable_fraction=0.05, constant_fraction=0.01
        )
        assert trigger.decide(9_000.0 * 0.93, 9_000.0) == UPGRADE
        assert trigger.decide(90.0 * 0.93, 90.0) == HOLD


class TestHysteresisBand:
    def test_band_between_degrade_and_upgrade_holds(self):
        trigger = AdaptationTrigger(1000.0)
        residual = 800.0
        margin = trigger.upgrade_margin(residual)
        for demand in (residual, residual - margin / 2, residual - margin):
            assert trigger.decide(demand, residual) == HOLD

    def test_zero_fractions_collapse_the_band(self):
        trigger = AdaptationTrigger(
            1000.0, variable_fraction=0.0, constant_fraction=0.0
        )
        assert trigger.decide(500.0, 500.0) == HOLD  # exact balance
        assert trigger.decide(499.999, 500.0) == UPGRADE
        assert trigger.decide(500.001, 500.0) == DEGRADE
