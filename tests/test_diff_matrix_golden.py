"""Golden regression wall around the policy diff matrix.

The committed ``tests/goldens/policy-matrix.json`` is the canonical
N-way diff document for the pinned candidate grid (see
``tests/golden_scenarios.py``).  These tests assert the freshly
computed document is *byte-identical* to the golden across every
driver the matrix can run under — serial, parallel workers, a warm
result cache, and a service-submitted job — so any controller drift,
diff-algorithm change, or serialization wobble fails loudly with the
offending rows.  Intentional changes are re-blessed with
``python scripts/regen_goldens.py --matrix``.
"""

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.service import CampaignService
from tests.golden_scenarios import (
    MATRIX_CANDIDATES,
    matrix_campaign_spec,
    matrix_golden_path,
    run_matrix_scenario,
)

REBLESS_HINT = (
    "\n\nIf this behaviour change is intentional, re-bless with: "
    "PYTHONPATH=src python scripts/regen_goldens.py --matrix"
)


def golden_document():
    path = matrix_golden_path()
    assert os.path.exists(path), (
        f"missing golden {path}; generate it with "
        f"scripts/regen_goldens.py --matrix"
    )
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def assert_matches_golden(document, driver):
    golden = golden_document()
    if document == golden:
        return
    got = json.loads(document)["rows"]
    want = json.loads(golden)["rows"]
    drifted = [r["policy"] for r, g in zip(got, want) if r != g]
    raise AssertionError(
        f"matrix document under {driver} is not byte-identical to the "
        f"golden (drifted rows: {drifted or 'serialization only'})"
        + REBLESS_HINT
    )


def test_serial_matches_golden():
    assert_matches_golden(run_matrix_scenario().document(), "serial")


def test_parallel_matches_golden():
    assert_matches_golden(run_matrix_scenario(jobs=2).document(),
                          "jobs=2")


def test_cache_warm_matches_golden(tmp_path):
    cache = tmp_path / "cache"
    cold = run_matrix_scenario(cache=cache)
    warm = run_matrix_scenario(cache=cache)
    assert_matches_golden(cold.document(), "cache-cold")
    assert_matches_golden(warm.document(), "cache-warm")


def test_service_submission_matches_golden(tmp_path):
    """A matrix campaign through the persistent service folds to the
    same bytes as the one-shot runner."""
    from repro.fleet.diffmatrix import matrix_from_values

    spec = matrix_campaign_spec()
    svc = CampaignService(workers=2, cache=tmp_path / "cache",
                          poll_s=0.02, backoff_s=0.01,
                          tracer=NULL_TRACER, metrics=MetricsRegistry())
    with svc:
        job_id = svc.submit(spec)
        status = svc.wait(job_id, timeout=120)
        assert status["state"] == "done"
        payload = svc.result(job_id)
    matrix = matrix_from_values(spec, payload["values"])
    assert_matches_golden(matrix.document(), "service")


def test_golden_rows_are_meaningful():
    """Every candidate in the golden actually diverges — the matrix
    pins real policy differences, not a wall of zeros."""
    golden = json.loads(golden_document())
    rows = {r["policy"]: r for r in golden["rows"]}
    baseline = rows.pop("baseline")
    assert baseline["identical"] is True
    assert baseline["windows"] == 0
    assert baseline["energy_delta_j"] == 0.0
    assert set(rows) == set(MATRIX_CANDIDATES)
    for policy, row in rows.items():
        assert row["windows"] > 0, f"{policy}: no divergence windows"
        assert row["energy_delta_j"] != 0.0, f"{policy}: zero delta"
        assert row["shape_distance"] > 0.0, f"{policy}: zero distance"


def test_perturbed_policy_fails_golden(monkeypatch):
    """The matrix golden must be sensitive to controller drift: nudge
    the degrade threshold and the document must change."""
    from repro.core.hysteresis import AdaptationTrigger

    original = AdaptationTrigger.decide

    def perturbed(self, predicted_demand, residual):
        return original(self, predicted_demand, residual * 0.9)

    monkeypatch.setattr(AdaptationTrigger, "decide", perturbed)
    # The worker memo must not serve records computed before the
    # perturbation; run in-process with a fresh memo.
    from repro.fleet import diffmatrix

    monkeypatch.setattr(diffmatrix, "_RECORD_MEMO", {})
    document = run_matrix_scenario().document()
    assert document != golden_document(), (
        "perturbing the controller did not change the matrix document"
        " — the golden would not catch real drift"
    )


def test_document_round_trips():
    """from_dict(to_dict) reproduces the exact document bytes."""
    from repro.fleet.diffmatrix import PolicyMatrix

    golden = golden_document()
    matrix = PolicyMatrix.from_dict(json.loads(golden))
    assert matrix.document() == golden


@pytest.mark.parametrize("flag", ["--max-windows", "--max-delta-j"])
def test_golden_grid_would_trip_ci_gate(flag):
    """The CI gate thresholds are meaningful against this golden: a
    zero bound trips on every candidate, a huge bound on none."""
    from repro.fleet.diffmatrix import PolicyMatrix

    matrix = PolicyMatrix.from_dict(json.loads(golden_document()))
    kwargs = {"--max-windows": "max_windows",
              "--max-delta-j": "max_abs_delta_j"}[flag]
    assert len(matrix.violations(**{kwargs: 0})) == len(MATRIX_CANDIDATES)
    assert matrix.violations(**{kwargs: 10**9}) == []
