"""Unit tests for individual hardware power components."""

import pytest

from repro.hardware import (
    Cpu,
    Disk,
    Display,
    HardwareError,
    PowerComponent,
    Rect,
    WaveLan,
    ZonedDisplay,
)
from repro.hardware import thinkpad560x as tp


class TestPowerComponent:
    def test_initial_state_power(self):
        comp = PowerComponent("x", {"on": 2.0, "off": 0.0}, "on")
        assert comp.power == 2.0

    def test_set_state_changes_power(self):
        comp = PowerComponent("x", {"on": 2.0, "off": 0.0}, "on")
        comp.set_state("off")
        assert comp.power == 0.0
        assert comp.is_off()

    def test_unknown_state_rejected(self):
        comp = PowerComponent("x", {"on": 2.0}, "on")
        with pytest.raises(HardwareError):
            comp.set_state("warp")

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(HardwareError):
            PowerComponent("x", {"on": 2.0}, "nope")

    def test_negative_power_rejected(self):
        with pytest.raises(HardwareError):
            PowerComponent("x", {"on": -1.0}, "on")

    def test_empty_states_rejected(self):
        with pytest.raises(HardwareError):
            PowerComponent("x", {}, "on")

    def test_observer_sees_transition(self):
        comp = PowerComponent("x", {"a": 1.0, "b": 2.0}, "a")
        seen = []
        comp.observe(lambda c, old, new: seen.append((old, new)))
        comp.set_state("b")
        comp.set_state("b")  # no-op, no duplicate notification
        assert seen == [("a", "b")]

    def test_pre_change_hook_runs_before_transition(self):
        comp = PowerComponent("x", {"a": 1.0, "b": 2.0}, "a")
        powers = []
        comp._pre_change = lambda: powers.append(comp.power)
        comp.set_state("b")
        assert powers == [1.0]  # integrated at the *old* power


class TestCpu:
    def test_idle_draws_nothing_extra(self):
        assert Cpu(7.1).power == 0.0

    def test_busy_draws_extra(self):
        cpu = Cpu(7.1)
        cpu.busy()
        assert cpu.power == 7.1
        cpu.idle()
        assert cpu.power == 0.0


class TestDisplay:
    def test_figure4_states(self):
        display = Display(tp.DISPLAY_BRIGHT_W, tp.DISPLAY_DIM_W)
        assert display.power == pytest.approx(4.54)
        display.dim()
        assert display.power == pytest.approx(1.95)
        display.off()
        assert display.power == 0.0
        display.bright()
        assert display.power == pytest.approx(4.54)

    def test_screen_rect(self):
        display = Display(4.54, 1.95, width=800, height=600)
        assert display.screen.area == 800 * 600


class TestRect:
    def test_area(self):
        assert Rect(0, 0, 10, 5).area == 50

    def test_negative_dimensions_rejected(self):
        with pytest.raises(HardwareError):
            Rect(0, 0, -1, 5)

    def test_intersection_positive(self):
        assert Rect(0, 0, 10, 10).intersects(Rect(5, 5, 10, 10))

    def test_touching_edges_do_not_intersect(self):
        assert not Rect(0, 0, 10, 10).intersects(Rect(10, 0, 10, 10))

    def test_disjoint(self):
        assert not Rect(0, 0, 2, 2).intersects(Rect(50, 50, 2, 2))


class TestZonedDisplay:
    def make(self, rows, cols):
        return ZonedDisplay(4.0, 2.0, rows, cols, width=800, height=600)

    def test_all_bright_equals_full_panel(self):
        display = self.make(2, 2)
        assert display.power == pytest.approx(4.0)

    def test_zone_power_is_area_proportional(self):
        display = self.make(2, 2)
        display.set_all_zones(ZonedDisplay.OFF)
        display.set_zone(0, ZonedDisplay.BRIGHT)
        assert display.power == pytest.approx(1.0)  # 1/4 of 4.0 W

    def test_mixed_levels_sum(self):
        display = self.make(2, 2)
        display.set_all_zones(ZonedDisplay.OFF)
        display.set_zone(0, ZonedDisplay.BRIGHT)  # 1.0
        display.set_zone(1, ZonedDisplay.DIM)     # 0.5
        assert display.power == pytest.approx(1.5)

    def test_master_off_overrides_zones(self):
        display = self.make(2, 2)
        display.off()
        assert display.power == 0.0

    def test_zone_rect_geometry_2x2(self):
        display = self.make(2, 2)
        rect = display.zone_rect(3)  # bottom-right
        assert (rect.x, rect.y, rect.width, rect.height) == (400, 300, 400, 300)

    def test_zones_for_small_window_one_zone(self):
        display = self.make(2, 2)
        assert display.zones_for(Rect(0, 0, 300, 200)) == [0]

    def test_zones_for_fullscreen_all_zones(self):
        display = self.make(2, 4)
        assert display.zones_for(display.screen) == list(range(8))

    def test_zones_for_straddling_window(self):
        display = self.make(2, 2)
        # Centered window touches all four zones.
        assert display.zones_for(Rect(300, 200, 200, 200)) == [0, 1, 2, 3]

    def test_illuminate_returns_lit_count_and_sets_background(self):
        display = self.make(2, 4)
        lit = display.illuminate([Rect(0, 0, 190, 290)], background=ZonedDisplay.OFF)
        assert lit == 1
        assert display.power == pytest.approx(4.0 / 8)

    def test_illuminate_multiple_windows(self):
        display = self.make(2, 2)
        lit = display.illuminate(
            [Rect(0, 0, 100, 100), Rect(500, 400, 100, 100)],
            background=ZonedDisplay.OFF,
        )
        assert lit == 2

    def test_invalid_grid_rejected(self):
        with pytest.raises(HardwareError):
            self.make(0, 2)

    def test_invalid_zone_index_rejected(self):
        display = self.make(2, 2)
        with pytest.raises(HardwareError):
            display.set_zone(9, ZonedDisplay.OFF)
        with pytest.raises(HardwareError):
            display.zone_rect(-1)

    def test_invalid_zone_level_rejected(self):
        display = self.make(2, 2)
        with pytest.raises(HardwareError):
            display.set_zone(0, "strobe")


class TestDisk:
    def test_figure4_states(self):
        disk = Disk(tp.DISK_IDLE_W, tp.DISK_STANDBY_W, tp.DISK_ACTIVE_W)
        assert disk.power == pytest.approx(0.88)
        disk.standby()
        assert disk.power == pytest.approx(0.16)

    def test_spin_up_needed_from_standby(self):
        disk = Disk(0.88, 0.16, 2.1)
        assert not disk.spin_up_needed()
        disk.standby()
        assert disk.spin_up_needed()


class TestWaveLan:
    def make(self):
        return WaveLan(
            tp.WAVELAN_IDLE_W,
            tp.WAVELAN_STANDBY_W,
            tp.WAVELAN_RECV_W,
            tp.WAVELAN_XMIT_W,
        )

    def test_figure4_states(self):
        nic = self.make()
        assert nic.power == pytest.approx(1.46)
        nic.set_resting_state(WaveLan.STANDBY)
        assert nic.power == pytest.approx(0.18)

    def test_transfer_raises_power_then_returns_to_resting(self):
        nic = self.make()
        nic.set_resting_state(WaveLan.STANDBY)
        nic.begin_transfer(WaveLan.RECV)
        assert nic.power == pytest.approx(tp.WAVELAN_RECV_W)
        nic.end_transfer()
        assert nic.power == pytest.approx(0.18)

    def test_nested_transfers_keep_nic_awake(self):
        nic = self.make()
        nic.set_resting_state(WaveLan.STANDBY)
        nic.begin_transfer(WaveLan.RECV)
        nic.begin_transfer(WaveLan.XMIT)
        nic.end_transfer()
        assert nic.state == WaveLan.XMIT  # still one transfer in flight
        nic.end_transfer()
        assert nic.state == WaveLan.STANDBY

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            self.make().end_transfer()

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            self.make().begin_transfer("sideways")

    def test_invalid_resting_state_rejected(self):
        with pytest.raises(ValueError):
            self.make().set_resting_state(WaveLan.RECV)
