"""Unit tests for small pieces: timeline queries, X server, servers."""

import pytest

from repro.apps import XServer
from repro.experiments import build_rig
from repro.net import Server
from repro.sim import Simulator, Timeline


class TestTimeline:
    def make(self):
        timeline = Timeline()
        timeline.record(1.0, "energy", "supply", 100.0)
        timeline.record(2.0, "energy", "demand", 90.0)
        timeline.record(3.0, "energy", "supply", 80.0)
        timeline.record(4.0, "fidelity", "video", ("baseline", 1.0))
        return timeline

    def test_len_and_iter(self):
        timeline = self.make()
        assert len(timeline) == 4
        assert [r.category for r in timeline] == [
            "energy", "energy", "energy", "fidelity",
        ]

    def test_category_filter(self):
        timeline = self.make()
        assert len(timeline.category("energy")) == 3
        assert timeline.category("ghost") == []

    def test_series_with_label(self):
        timeline = self.make()
        times, values = timeline.series("energy", "supply")
        assert times == [1.0, 3.0]
        assert values == [100.0, 80.0]

    def test_series_without_label_takes_all(self):
        timeline = self.make()
        times, _values = timeline.series("energy")
        assert times == [1.0, 2.0, 3.0]

    def test_last(self):
        timeline = self.make()
        assert timeline.last("energy", "supply").value == 80.0
        assert timeline.last("nothing") is None

    def test_between(self):
        timeline = self.make()
        records = timeline.between(2.0, 4.0)
        assert [r.time for r in records] == [2.0, 3.0]


class TestXServer:
    def test_render_seconds_charges_x_process(self):
        rig = build_rig()
        xserver = rig.xserver

        def draw():
            yield from xserver.render_seconds(1.5)

        proc = rig.sim.spawn(draw())
        rig.run_until_complete(proc)
        assert rig.energy_report()["X"] > 0
        assert xserver.requests == 1

    def test_zero_seconds_is_free(self):
        rig = build_rig()

        def draw():
            yield from rig.xserver.render_seconds(0.0)

        proc = rig.sim.spawn(draw())
        rig.run_until_complete(proc)
        assert "X" not in rig.energy_report()

    def test_render_pixels_scales_with_area(self):
        rig = build_rig()
        xserver = rig.xserver
        done = []

        def draw():
            yield from xserver.render_pixels(100_000, 1e-6)
            done.append(rig.sim.now)

        proc = rig.sim.spawn(draw())
        rig.run_until_complete(proc)
        assert done[0] == pytest.approx(0.1)

    def test_render_bytes_scales_with_size(self):
        rig = build_rig()
        done = []

        def draw():
            yield from rig.xserver.render_bytes(1_000_000, 2e-7)
            done.append(rig.sim.now)

        proc = rig.sim.spawn(draw())
        rig.run_until_complete(proc)
        assert done[0] == pytest.approx(0.2)

    def test_standalone_xserver(self):
        from repro.hardware import build_machine

        sim = Simulator()
        machine = build_machine(sim)
        xserver = XServer(machine)

        def draw():
            yield from xserver.render_seconds(0.5, procedure="_PolyFill")

        sim.spawn(draw())
        sim.run()
        machine.advance()
        assert machine.energy_by_procedure[("X", "_PolyFill")] > 0


class TestServerSpeed:
    def test_set_speed_validation(self):
        server = Server("s")
        with pytest.raises(ValueError):
            server.set_speed(0.0)

    def test_set_speed_changes_service_time(self):
        server = Server("s", speed=1.0)
        assert server.service_time(2.0) == pytest.approx(2.0)
        server.set_speed(4.0)
        assert server.service_time(2.0) == pytest.approx(0.5)
