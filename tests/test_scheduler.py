"""Tests for quantum (round-robin) CPU scheduling."""

import pytest

from repro.hardware import build_machine
from repro.sim import QuantumScheduler, Simulator


class TestQuantumScheduler:
    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            QuantumScheduler(Simulator(), quantum=0.0)

    def test_negative_work_rejected(self):
        sim = Simulator()
        scheduler = QuantumScheduler(sim)

        def worker():
            yield from scheduler.run(-1.0)

        sim.spawn(worker())
        with pytest.raises(ValueError):
            sim.run()

    def test_single_job_runs_to_exact_duration(self):
        sim = Simulator()
        scheduler = QuantumScheduler(sim, quantum=0.3)
        done = []

        def worker():
            yield from scheduler.run(1.0)
            done.append(sim.now)

        sim.spawn(worker())
        sim.run()
        assert done == [pytest.approx(1.0)]
        # 1.0 s at quantum 0.3 = slices of 0.3, 0.3, 0.3, 0.1.
        assert scheduler.slices_granted == 4
        assert scheduler.preemptions == 0

    def test_two_jobs_interleave_round_robin(self):
        sim = Simulator()
        scheduler = QuantumScheduler(sim, quantum=0.5)
        finish = {}

        def worker(tag, duration):
            yield from scheduler.run(duration, owner=tag)
            finish[tag] = sim.now

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 2.0))
        sim.run()
        # With FIFO whole-burst: a at 2.0, b at 4.0.  Round-robin:
        # both finish near the end, a one quantum before b.
        assert finish["a"] == pytest.approx(3.5)
        assert finish["b"] == pytest.approx(4.0)
        assert scheduler.preemptions > 0

    def test_short_job_not_starved_by_long_job(self):
        sim = Simulator()
        scheduler = QuantumScheduler(sim, quantum=0.1)
        finish = {}

        def worker(tag, duration):
            yield from scheduler.run(duration, owner=tag)
            finish[tag] = sim.now

        sim.spawn(worker("long", 10.0))
        sim.spawn(worker("short", 0.2))
        sim.run()
        # FIFO would delay "short" to 10.2; round-robin to ~0.4.
        assert finish["short"] < 1.0
        assert finish["long"] == pytest.approx(10.2)

    def test_slice_hooks_run_per_slice(self):
        sim = Simulator()
        scheduler = QuantumScheduler(sim, quantum=0.5)
        events = []

        def worker():
            yield from scheduler.run(
                1.0,
                on_slice_start=lambda: events.append(("start", sim.now)),
                on_slice_end=lambda: events.append(("end", sim.now)),
            )

        sim.spawn(worker())
        sim.run()
        assert events == [
            ("start", 0.0), ("end", 0.5), ("start", 0.5), ("end", 1.0),
        ]


class TestMachineWithScheduler:
    def test_compute_interleaves_and_conserves_energy(self):
        sim = Simulator()
        scheduler = QuantumScheduler(sim, quantum=0.1)
        machine = build_machine(sim, scheduler=scheduler)
        finish = {}

        def app(tag, duration):
            yield from machine.compute(duration, tag)
            finish[tag] = sim.now

        sim.spawn(app("a", 1.0))
        sim.spawn(app("b", 1.0))
        sim.run(until=3.0)
        machine.advance()
        # Both finish around 2.0 (interleaved), not at 1.0 / 2.0.
        assert finish["a"] == pytest.approx(1.9, abs=0.15)
        assert finish["b"] == pytest.approx(2.0, abs=0.15)
        # Attribution is exact despite preemption: both apps executed
        # 1 s of a machine whose power they saw alternately.
        report = machine.energy_report()
        assert report["a"] == pytest.approx(report["b"], rel=0.05)
        assert sum(report.values()) == pytest.approx(machine.energy_total)

    def test_cpu_power_state_correct_across_slices(self):
        """The CPU must be busy exactly while slices execute: total CPU
        energy equals busy-watts x total work regardless of slicing."""
        from repro.hardware import thinkpad560x as tp

        sim = Simulator()
        scheduler = QuantumScheduler(sim, quantum=0.07)
        machine = build_machine(sim, scheduler=scheduler)

        def app(tag):
            yield from machine.compute(1.0, tag)

        sim.spawn(app("a"))
        sim.spawn(app("b"))
        sim.run(until=5.0)
        machine.advance()
        assert machine.energy_by_component["cpu"] == pytest.approx(
            tp.CPU_BUSY_EXTRA_W * 2.0, rel=1e-6
        )

    def test_rig_accepts_cpu_quantum(self):
        from repro.experiments import build_rig

        rig = build_rig(cpu_quantum=0.05)
        assert rig.machine.scheduler is not None
        assert rig.machine.scheduler.quantum == 0.05
