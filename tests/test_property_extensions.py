"""Property-based tests for the extension modules: cache, window
manager, gauge quantization, battery models, expectations."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiskCache
from repro.core.expectations import ResourceWindow
from repro.hardware import (
    ExternalSupply,
    Machine,
    PeukertBattery,
    PowerComponent,
    Rect,
    VoltageCurve,
    ZonedDisplay,
)
from repro.apps import ZonedWindowManager
from repro.sim import Simulator


# ----------------------------------------------------------------------
# disk cache
# ----------------------------------------------------------------------


def run_generator(sim, gen):
    proc = sim.spawn(gen)
    while proc.alive:
        if not sim.step():
            raise RuntimeError("deadlock")


def make_cached_machine(capacity):
    from repro.hardware import build_machine

    sim = Simulator()
    machine = build_machine(sim)
    return sim, machine, DiskCache(machine, capacity)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),     # key
            st.integers(min_value=1, max_value=5000),  # size
        ),
        min_size=1,
        max_size=40,
    )
)
def test_cache_never_exceeds_capacity(operations):
    capacity = 10_000
    sim, machine, cache = make_cached_machine(capacity)

    def session():
        for key, size in operations:
            yield from cache.insert(f"k{key}", size)

    run_generator(sim, session())
    assert cache.resident_bytes <= capacity
    # LRU bookkeeping is consistent.
    assert len(cache) <= 10
    assert cache.resident_bytes == sum(cache._entries.values())


@settings(max_examples=30)
@given(
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30)
)
def test_cache_fetch_through_hit_miss_accounting(accesses):
    sim, machine, cache = make_cached_machine(10_000_000)
    seen = set()
    expected_hits = 0
    expected_misses = 0
    for key in accesses:
        if key in seen:
            expected_hits += 1
        else:
            expected_misses += 1
            seen.add(key)

    def network_fetch(size):
        def fetch():
            yield machine.sim.timeout(0.001)
            return size
        return fetch

    def session():
        for key in accesses:
            yield from cache.fetch_through(key, network_fetch(100 + key))

    run_generator(sim, session())
    assert cache.hits == expected_hits
    assert cache.misses == expected_misses


# ----------------------------------------------------------------------
# window manager snap-to
# ----------------------------------------------------------------------


@settings(max_examples=60)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    x=st.floats(min_value=0, max_value=700),
    y=st.floats(min_value=0, max_value=500),
    w=st.floats(min_value=10, max_value=400),
    h=st.floats(min_value=10, max_value=300),
    max_snap=st.floats(min_value=0, max_value=120),
)
def test_snap_never_worsens_and_respects_bounds(rows, cols, x, y, w, h, max_snap):
    display = ZonedDisplay(4.0, 2.0, rows, cols, width=800, height=600)
    mgr = ZonedWindowManager(display, max_snap=max_snap)
    rect = Rect(x, y, min(w, 800 - x), min(h, 600 - y))
    if rect.area <= 0:
        return
    snapped = mgr.snap(rect)
    # Never more zones than before.
    assert len(display.zones_for(snapped)) <= len(display.zones_for(rect))
    # Displacement bounded per axis.
    assert abs(snapped.x - rect.x) <= max_snap + 1e-9
    assert abs(snapped.y - rect.y) <= max_snap + 1e-9
    # Still on screen.
    assert snapped.x >= -1e-9 and snapped.y >= -1e-9
    assert snapped.x + snapped.width <= 800 + 1e-9
    assert snapped.y + snapped.height <= 600 + 1e-9
    # Size unchanged.
    assert snapped.width == rect.width and snapped.height == rect.height


# ----------------------------------------------------------------------
# SmartBattery gauge quantization
# ----------------------------------------------------------------------


@settings(max_examples=40)
@given(
    watts=st.floats(min_value=0.0, max_value=30.0),
    resolution=st.floats(min_value=0.01, max_value=2.0),
)
def test_gauge_quantization_error_bounded(watts, resolution):
    from repro.powerscope import SmartBatteryGauge

    sim = Simulator()
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("load", {"on": watts}, "on"))
    gauge = SmartBatteryGauge(
        machine, period=1.0, resolution_w=resolution, averaging_window=1
    )
    readings = []
    gauge.subscribe(lambda t, w, dt: readings.append(w))
    gauge.start()
    sim.run(until=2.0)
    for reading in readings:
        assert abs(reading - machine.power) <= resolution / 2 + 1e-9


# ----------------------------------------------------------------------
# battery models
# ----------------------------------------------------------------------


@settings(max_examples=50)
@given(
    power=st.floats(min_value=0.1, max_value=100.0),
    rated=st.floats(min_value=1.0, max_value=20.0),
    exponent=st.floats(min_value=1.0, max_value=1.3),
    joules=st.floats(min_value=0.0, max_value=100.0),
)
def test_peukert_penalty_direction(power, rated, exponent, joules):
    battery = PeukertBattery(1e6, rated_power_w=rated, exponent=exponent)
    battery.note_power(power)
    battery.drain(joules)
    if power > rated:
        assert battery.drawn >= joules - 1e-9   # penalty
    else:
        assert battery.drawn <= joules + 1e-9   # bonus


@settings(max_examples=50)
@given(soc=st.floats(min_value=0.0, max_value=1.0))
def test_voltage_curve_within_bounds(soc):
    curve = VoltageCurve()
    volts = curve.voltage(soc)
    assert curve.v_empty - 1e-9 <= volts <= curve.v_full + 1e-9


# ----------------------------------------------------------------------
# resource windows
# ----------------------------------------------------------------------


@settings(max_examples=50)
@given(
    low=st.floats(min_value=0.0, max_value=1e6),
    span=st.floats(min_value=0.0, max_value=1e6),
    level=st.floats(min_value=-1e6, max_value=2e6),
)
def test_window_contains_is_consistent(low, span, level):
    window = ResourceWindow(low, low + span)
    inside = window.contains(level)
    assert inside == (low <= level <= low + span)
