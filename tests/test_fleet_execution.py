"""Unit tests for CampaignExecution, the placement-independent engine.

The execution is driven here by hand — no pool, no service — so every
transition (cache admission, retry backoff deadlines, permanent failure,
completion) is observable deterministically via an injected fake clock.
"""

import pytest

from repro.fleet import CampaignSpec, ResultCache, Task
from repro.fleet.execution import (
    CACHED,
    FAILED,
    OK,
    CampaignExecution,
    describe_error,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_spec(n=3, name="exec-test"):
    return CampaignSpec(
        name=name,
        tasks=tuple(
            Task(id=f"t{i}", fn="repro.fleet.library:seeded_value",
                 params={"seed": i})
            for i in range(n)
        ),
    )


def make_execution(spec=None, **kwargs):
    kwargs.setdefault("tracer", NULL_TRACER)
    kwargs.setdefault("metrics", MetricsRegistry())
    return CampaignExecution(spec if spec is not None else make_spec(),
                             **kwargs)


def outcome(value, wall_s=0.1):
    return {"value": value, "wall_s": wall_s}


class TestAdmission:
    def test_admit_without_cache_returns_all_tasks(self):
        spec = make_spec()
        execution = make_execution(spec)
        assert execution.admit() == list(spec.tasks)

    def test_admit_serves_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = make_spec()
        cache.put(spec.tasks[0].key(), {"value": 42.0, "wall_s": 0.5})
        execution = make_execution(spec, cache=cache)
        pending = execution.admit()
        assert [t.id for t in pending] == ["t1", "t2"]
        assert execution.telemetry.cached == 1
        assert execution.results["t0"].status == CACHED
        assert execution.results["t0"].value == 42.0

    def test_cache_hit_increments_cache_hit_counter(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = make_spec()
        cache.put(spec.tasks[0].key(), {"value": 1.0, "wall_s": 0.0})
        metrics = MetricsRegistry()
        execution = make_execution(spec, cache=cache, metrics=metrics)
        execution.admit()
        assert metrics.counter("fleet.cache_hit").value == 1


class TestOutcomes:
    def test_success_path(self):
        spec = make_spec(1)
        execution = make_execution(spec)
        execution.admit()
        execution.note_attempt()
        execution.record_success(spec.tasks[0], outcome(3.14), attempt=1)
        assert execution.done
        result = execution.finish()
        assert result.ok
        assert result.values == {"t0": 3.14}
        assert result.telemetry.succeeded == 1
        assert result.telemetry.attempts == 1

    def test_success_writes_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = make_spec(1)
        execution = make_execution(spec, cache=cache)
        execution.record_success(spec.tasks[0], outcome(7.0), attempt=1)
        record = cache.get(spec.tasks[0].key())
        assert record["value"] == 7.0

    def test_error_schedules_retry_with_backoff(self):
        clock = FakeClock()
        spec = make_spec(1)
        execution = make_execution(spec, retries=2, backoff_s=0.5,
                                   clock=clock)
        due = execution.record_error(spec.tasks[0], "boom", attempt=1)
        assert due == pytest.approx(clock.now + 0.5)
        assert execution.awaiting_retry == 1
        assert not execution.done
        # Second failure doubles the backoff.
        execution.pop_due(now=due)
        due2 = execution.record_error(spec.tasks[0], "boom", attempt=2)
        assert due2 == pytest.approx(clock.now + 1.0)

    def test_retries_exhausted_is_permanent_failure(self):
        spec = make_spec(1)
        execution = make_execution(spec, retries=1)
        assert execution.record_error(spec.tasks[0], "x", 1) is not None
        assert execution.record_error(spec.tasks[0], "x", 2) is None
        assert execution.done
        result = execution.finish()
        assert not result.ok
        assert result.failures[0].task_id == "t0"
        assert result.failures[0].attempts == 2

    def test_pop_due_respects_deadlines(self):
        clock = FakeClock()
        spec = make_spec(2)
        execution = make_execution(spec, retries=1, backoff_s=1.0,
                                   clock=clock)
        execution.record_error(spec.tasks[0], "x", 1)
        assert execution.pop_due() == []  # backoff not expired
        assert execution.next_due() == pytest.approx(clock.now + 1.0)
        clock.advance(1.5)
        popped = execution.pop_due()
        assert [(t.id, a) for t, a in popped] == [("t0", 2)]
        assert execution.next_due() is None


class TestCompletion:
    def test_results_are_in_spec_order(self):
        spec = make_spec(3)
        execution = make_execution(spec)
        # Record out of order; finish() must restore spec order.
        for i in (2, 0, 1):
            execution.record_success(spec.tasks[i], outcome(float(i)), 1)
        result = execution.finish()
        assert [r.task_id for r in result.results] == ["t0", "t1", "t2"]

    def test_finish_twice_raises(self):
        spec = make_spec(1)
        execution = make_execution(spec)
        execution.record_success(spec.tasks[0], outcome(1.0), 1)
        execution.finish()
        with pytest.raises(RuntimeError):
            execution.finish()

    def test_wall_time_uses_injected_clock(self):
        clock = FakeClock()
        spec = make_spec(1)
        execution = make_execution(spec, clock=clock)
        clock.advance(2.5)
        execution.record_success(spec.tasks[0], outcome(1.0), 1)
        result = execution.finish()
        assert result.telemetry.wall_s == pytest.approx(2.5)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            make_execution(retries=-1)


class TestEmission:
    def test_progress_callback_sees_every_event(self):
        events = []
        spec = make_spec(2)
        execution = make_execution(
            spec, retries=0,
            progress=lambda event, task_id, telem, detail:
                events.append((event, task_id)),
        )
        execution.record_success(spec.tasks[0], outcome(1.0), 1)
        execution.record_error(spec.tasks[1], "boom", 1)
        assert (OK, "t0") in events
        assert (FAILED, "t1") in events

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        spec = make_spec(2)
        execution = make_execution(spec, retries=1, metrics=metrics)
        execution.record_success(spec.tasks[0], outcome(1.0), 1)
        execution.record_error(spec.tasks[1], "x", 1)  # retry
        execution.record_error(spec.tasks[1], "x", 2)  # permanent
        assert metrics.counter("fleet.tasks_ok").value == 1
        assert metrics.counter("fleet.retries").value == 1
        assert metrics.counter("fleet.tasks_failed").value == 1

    def test_queue_depth_gauge_tracks_remaining_tasks(self):
        metrics = MetricsRegistry()
        spec = make_spec(3)
        execution = make_execution(spec, metrics=metrics)
        execution.record_success(spec.tasks[0], outcome(1.0), 1)
        assert metrics.gauge("fleet.queue_depth").value == 2
        execution.record_success(spec.tasks[1], outcome(1.0), 1)
        execution.record_success(spec.tasks[2], outcome(1.0), 1)
        assert metrics.gauge("fleet.queue_depth").value == 0


def test_describe_error():
    assert describe_error(ValueError("bad")) == "ValueError: bad"
