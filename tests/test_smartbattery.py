"""Tests for the SmartBattery-style coarse power gauge (paper §5.1.1)."""

import pytest

from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)
from repro.hardware import ExternalSupply, Machine, PowerComponent
from repro.powerscope import GAUGE_OVERHEAD_W, SmartBatteryGauge
from repro.sim import Simulator


def flat_machine(sim, watts=8.0):
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("base", {"on": watts}, "on"))
    return machine


class TestGaugeBasics:
    def test_publishes_at_configured_period(self):
        sim = Simulator()
        machine = flat_machine(sim)
        gauge = SmartBatteryGauge(machine, period=1.0, averaging_window=4)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append((t, w, dt)))
        gauge.start()
        sim.run(until=5.0)
        assert len(got) == 5
        assert all(dt == pytest.approx(1.0) for _t, _w, dt in got)

    def test_readings_are_quantized(self):
        sim = Simulator()
        machine = flat_machine(sim, watts=8.13)
        gauge = SmartBatteryGauge(machine, resolution_w=0.25)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(w))
        gauge.start()
        sim.run(until=3.0)
        for reading in got:
            steps = reading / 0.25
            assert steps == pytest.approx(round(steps))
        # 8.13 quantizes to 8.25.
        assert got[0] == pytest.approx(8.25)

    def test_averaging_smooths_bursts(self):
        sim = Simulator()
        machine = flat_machine(sim, watts=4.0)
        load = machine.attach(
            PowerComponent("burst", {"off": 0.0, "on": 8.0}, "off")
        )
        gauge = SmartBatteryGauge(
            machine, period=1.0, averaging_window=4, resolution_w=0.01
        )
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(w))
        gauge.start()
        # Burst on for half of each period.
        sim.schedule(0.1, lambda t: load.set_state("on"))
        sim.schedule(0.6, lambda t: load.set_state("off"))
        sim.run(until=1.0)
        # The published reading reflects a mixture, not the peak.
        assert got and 4.0 < got[0] < 12.0

    def test_stop_halts_publication(self):
        sim = Simulator()
        machine = flat_machine(sim)
        gauge = SmartBatteryGauge(machine, period=1.0)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(t))
        gauge.start()
        sim.run(until=2.5)
        gauge.stop()
        sim.run(until=10.0)
        assert len(got) == 2

    def test_overhead_component_under_10mw(self):
        """Paper: SmartBattery solutions use less than 10 mW."""
        sim = Simulator()
        machine = flat_machine(sim)
        SmartBatteryGauge(machine, model_overhead=True)
        assert machine["smartbattery-gauge"].power <= GAUGE_OVERHEAD_W
        assert GAUGE_OVERHEAD_W <= 0.010 + 1e-12

    def test_validation(self):
        sim = Simulator()
        machine = flat_machine(sim)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, period=0.0)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, period=-1.0)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, resolution_w=0.0)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, averaging_window=0)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, noise_w=-0.01)


class TestGaugeEdgeCases:
    def test_quantization_boundary_is_half_up(self):
        """A mean landing exactly on a step boundary (8.125 W at 0.25 W
        resolution = 32.5 steps) must round half-up to 8.25, not bounce
        to 8.0 with banker's rounding."""
        sim = Simulator()
        machine = flat_machine(sim, watts=8.125)
        gauge = SmartBatteryGauge(machine, resolution_w=0.25)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(w))
        gauge.start()
        sim.run(until=3.0)
        assert got == pytest.approx([8.25, 8.25, 8.25])

    def test_quantize_is_stable_across_step_parity(self):
        """Every exact boundary rounds the same direction: no
        flip-flopping with the parity of the step index."""
        sim = Simulator()
        machine = flat_machine(sim)
        gauge = SmartBatteryGauge(machine, resolution_w=0.25)
        assert gauge._quantize(8.125) == pytest.approx(8.25)   # 32.5 steps
        assert gauge._quantize(8.375) == pytest.approx(8.50)   # 33.5 steps
        assert gauge._quantize(0.125) == pytest.approx(0.25)

    def test_noise_is_deterministic_per_seed(self):
        def readings(seed):
            sim = Simulator()
            machine = flat_machine(sim, watts=6.0)
            gauge = SmartBatteryGauge(machine, resolution_w=0.01,
                                      noise_w=0.5, noise_seed=seed)
            got = []
            gauge.subscribe(lambda t, w, dt: got.append(w))
            gauge.start()
            sim.run(until=8.0)
            return got

        first = readings("devA")
        assert first == readings("devA")
        assert first != readings("devB")
        # The noise actually moves readings off the noiseless value.
        assert any(w != pytest.approx(6.0) for w in first)

    def test_noise_never_produces_negative_reading(self):
        """A noise excursion below zero draw clamps to 0.0: the gauge
        reports consumption, never charge."""
        sim = Simulator()
        machine = flat_machine(sim, watts=0.05)
        gauge = SmartBatteryGauge(machine, resolution_w=0.01,
                                  noise_w=1.0, noise_seed=3)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(w))
        gauge.start()
        sim.run(until=32.0)
        assert got
        assert all(w >= 0.0 for w in got)
        assert any(w == 0.0 for w in got), (
            "1 W noise over a 0.05 W draw never clamped — the clamp "
            "path was not exercised"
        )

    def test_sample_hooks_fire_per_internal_sample(self):
        sim = Simulator()
        machine = flat_machine(sim, watts=8.0)
        gauge = SmartBatteryGauge(machine, period=1.0, averaging_window=4)
        samples = []
        gauge.sample_hooks.append(lambda t, w: samples.append((t, w)))
        published = []
        gauge.subscribe(lambda t, w, dt: published.append(t))
        gauge.start()
        sim.run(until=2.0)
        # 4 internal samples per published reading.
        assert len(samples) == 4 * len(published) == 8
        assert all(w == pytest.approx(8.0) for _t, w in samples)


class TestGoalAdaptationOnGauge:
    """The deployment question the paper leaves open: does goal-directed
    adaptation still work on coarse on-board readings?"""

    def test_goals_nearly_met_with_coarse_gauge(self):
        """The measured cost of coarse deployment readings: on 1 s
        quantized (0.25 W) readings, goals are met or missed by under
        1 % of the duration — persistent quantization under-reading can
        delay the final degradations by a few control periods."""
        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goals = derive_goals(t_hi, t_lo, count=3)
        met = 0
        for goal in goals:
            result = run_goal_experiment(
                goal,
                initial_energy=energy,
                monitor_factory=lambda machine: SmartBatteryGauge(
                    machine, period=1.0, resolution_w=0.25
                ),
            )
            met += result.goal_met
            assert result.survived_seconds >= 0.99 * goal
        assert met >= 2  # most goals met outright

    def test_even_very_coarse_gauge_meets_midrange_goal(self):
        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goal = derive_goals(t_hi, t_lo, count=3)[1]
        result = run_goal_experiment(
            goal,
            initial_energy=energy,
            monitor_factory=lambda machine: SmartBatteryGauge(
                machine, period=2.0, resolution_w=1.0
            ),
        )
        assert result.goal_met

    def test_gauge_residual_tracking_close_to_truth(self):
        """The gauge's quantization error stays small when integrated:
        Odyssey's residual belief lands near the machine ground truth."""
        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goal = derive_goals(t_hi, t_lo, count=3)[1]
        result = run_goal_experiment(
            goal,
            initial_energy=energy,
            monitor_factory=lambda machine: SmartBatteryGauge(
                machine, period=1.0, resolution_w=0.25
            ),
        )
        # Battery ground truth and believed residual agree within 5%.
        _times, supply_series = result.timeline.series("energy", "supply")
        assert supply_series[-1] == pytest.approx(
            result.residual_energy, abs=0.05 * energy
        )
