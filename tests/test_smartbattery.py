"""Tests for the SmartBattery-style coarse power gauge (paper §5.1.1)."""

import pytest

from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)
from repro.hardware import ExternalSupply, Machine, PowerComponent
from repro.powerscope import GAUGE_OVERHEAD_W, SmartBatteryGauge
from repro.sim import Simulator


def flat_machine(sim, watts=8.0):
    machine = Machine(sim, ExternalSupply())
    machine.attach(PowerComponent("base", {"on": watts}, "on"))
    return machine


class TestGaugeBasics:
    def test_publishes_at_configured_period(self):
        sim = Simulator()
        machine = flat_machine(sim)
        gauge = SmartBatteryGauge(machine, period=1.0, averaging_window=4)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append((t, w, dt)))
        gauge.start()
        sim.run(until=5.0)
        assert len(got) == 5
        assert all(dt == pytest.approx(1.0) for _t, _w, dt in got)

    def test_readings_are_quantized(self):
        sim = Simulator()
        machine = flat_machine(sim, watts=8.13)
        gauge = SmartBatteryGauge(machine, resolution_w=0.25)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(w))
        gauge.start()
        sim.run(until=3.0)
        for reading in got:
            steps = reading / 0.25
            assert steps == pytest.approx(round(steps))
        # 8.13 quantizes to 8.25.
        assert got[0] == pytest.approx(8.25)

    def test_averaging_smooths_bursts(self):
        sim = Simulator()
        machine = flat_machine(sim, watts=4.0)
        load = machine.attach(
            PowerComponent("burst", {"off": 0.0, "on": 8.0}, "off")
        )
        gauge = SmartBatteryGauge(
            machine, period=1.0, averaging_window=4, resolution_w=0.01
        )
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(w))
        gauge.start()
        # Burst on for half of each period.
        sim.schedule(0.1, lambda t: load.set_state("on"))
        sim.schedule(0.6, lambda t: load.set_state("off"))
        sim.run(until=1.0)
        # The published reading reflects a mixture, not the peak.
        assert got and 4.0 < got[0] < 12.0

    def test_stop_halts_publication(self):
        sim = Simulator()
        machine = flat_machine(sim)
        gauge = SmartBatteryGauge(machine, period=1.0)
        got = []
        gauge.subscribe(lambda t, w, dt: got.append(t))
        gauge.start()
        sim.run(until=2.5)
        gauge.stop()
        sim.run(until=10.0)
        assert len(got) == 2

    def test_overhead_component_under_10mw(self):
        """Paper: SmartBattery solutions use less than 10 mW."""
        sim = Simulator()
        machine = flat_machine(sim)
        SmartBatteryGauge(machine, model_overhead=True)
        assert machine["smartbattery-gauge"].power <= GAUGE_OVERHEAD_W
        assert GAUGE_OVERHEAD_W <= 0.010 + 1e-12

    def test_validation(self):
        sim = Simulator()
        machine = flat_machine(sim)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, period=0.0)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, resolution_w=0.0)
        with pytest.raises(ValueError):
            SmartBatteryGauge(machine, averaging_window=0)


class TestGoalAdaptationOnGauge:
    """The deployment question the paper leaves open: does goal-directed
    adaptation still work on coarse on-board readings?"""

    def test_goals_nearly_met_with_coarse_gauge(self):
        """The measured cost of coarse deployment readings: on 1 s
        quantized (0.25 W) readings, goals are met or missed by under
        1 % of the duration — persistent quantization under-reading can
        delay the final degradations by a few control periods."""
        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goals = derive_goals(t_hi, t_lo, count=3)
        met = 0
        for goal in goals:
            result = run_goal_experiment(
                goal,
                initial_energy=energy,
                monitor_factory=lambda machine: SmartBatteryGauge(
                    machine, period=1.0, resolution_w=0.25
                ),
            )
            met += result.goal_met
            assert result.survived_seconds >= 0.99 * goal
        assert met >= 2  # most goals met outright

    def test_even_very_coarse_gauge_meets_midrange_goal(self):
        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goal = derive_goals(t_hi, t_lo, count=3)[1]
        result = run_goal_experiment(
            goal,
            initial_energy=energy,
            monitor_factory=lambda machine: SmartBatteryGauge(
                machine, period=2.0, resolution_w=1.0
            ),
        )
        assert result.goal_met

    def test_gauge_residual_tracking_close_to_truth(self):
        """The gauge's quantization error stays small when integrated:
        Odyssey's residual belief lands near the machine ground truth."""
        energy = 5_000.0
        t_hi, t_lo = fidelity_runtime_bounds(energy)
        goal = derive_goals(t_hi, t_lo, count=3)[1]
        result = run_goal_experiment(
            goal,
            initial_energy=energy,
            monitor_factory=lambda machine: SmartBatteryGauge(
                machine, period=1.0, resolution_w=0.25
            ),
        )
        # Battery ground truth and believed residual agree within 5%.
        _times, supply_series = result.timeline.series("energy", "supply")
        assert supply_series[-1] == pytest.approx(
            result.residual_energy, abs=0.05 * energy
        )
