"""Tests for the command-line interface and CSV export."""

import csv
import io

import pytest

from repro.analysis.export import energy_table_csv, timeline_csv, write_csv
from repro.cli import build_parser, main
from repro.sim import Timeline


class TestEnergyTableCsv:
    TABLE = {
        "baseline": {"a": 10.0, "b": 20.0},
        "hw-only": {"a": 9.0, "b": 18.0},
    }

    def test_round_trips_through_csv_reader(self):
        text = energy_table_csv(self.TABLE)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["config", "a", "b"]
        assert rows[1] == ["baseline", "10.0", "20.0"]
        assert rows[2] == ["hw-only", "9.0", "18.0"]

    def test_explicit_object_order(self):
        text = energy_table_csv(self.TABLE, object_names=["b", "a"])
        header = text.splitlines()[0]
        assert header == "config,b,a"

    def test_missing_object_becomes_empty_cell(self):
        table = {"x": {"a": 1.0}}
        text = energy_table_csv(table, object_names=["a", "ghost"])
        assert text.splitlines()[1] == "x,1.0,"

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            energy_table_csv({})


class TestTimelineCsv:
    def test_exports_records(self):
        timeline = Timeline()
        timeline.record(1.0, "energy", "supply", 100.0)
        timeline.record(1.5, "fidelity", "video", ("baseline", 1.0))
        text = timeline_csv(timeline)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["time", "category", "label", "value", "extra"]
        assert rows[1] == ["1.0", "energy", "supply", "100.0", ""]
        assert rows[2] == ["1.5", "fidelity", "video", "baseline", "1.0"]

    def test_category_filter(self):
        timeline = Timeline()
        timeline.record(1.0, "energy", "supply", 100.0)
        timeline.record(2.0, "hardware", "disk", "standby")
        text = timeline_csv(timeline, categories={"energy"})
        assert "disk" not in text

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), "a,b\n1,2\n")
        assert path.read_text() == "a,b\n1,2\n"


class TestCli:
    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp-drive"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_goal_command_exit_code_reflects_outcome(self, capsys):
        code = main(["goal", "--energy", "3000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MET" in out

    def test_goal_command_writes_trace_csv(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        main(["goal", "--energy", "3000", "--csv", str(path)])
        text = path.read_text()
        assert text.startswith("time,category,label,value")
        assert "supply" in text
        assert "fidelity" in text or "video" in text

    def test_fig13_command_prints_and_exports(self, tmp_path, capsys):
        path = tmp_path / "fig13.csv"
        code = main(["fig13", "--think", "5", "--csv", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "baseline" in out and "jpeg-5" in out
        assert path.read_text().startswith("config,")

    def test_profile_command_prints_profile(self, capsys):
        code = main(["profile", "--seconds", "5", "--rate", "200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "xanim" in out
        assert "Total" in out
