"""Tests for the energy-aware disk cache."""

import pytest

from repro.core import CacheError, DiskCache
from repro.experiments import build_rig
from repro.hardware import Disk
from repro.workloads import MAPS


def make_cache(rig, capacity=10_000_000, **kwargs):
    return DiskCache(rig.machine, capacity, power_manager=rig.power_manager,
                     **kwargs)


class TestCacheBasics:
    def test_validation(self):
        rig = build_rig()
        with pytest.raises(CacheError):
            DiskCache(rig.machine, 0)

    def test_requires_disk(self):
        from repro.hardware import ExternalSupply, Machine
        from repro.sim import Simulator

        machine = Machine(Simulator(), ExternalSupply())
        with pytest.raises(CacheError):
            DiskCache(machine, 1000)

    def test_read_miss_raises(self):
        rig = build_rig()
        cache = make_cache(rig)

        def reader():
            yield from cache.read("ghost")

        proc = rig.sim.spawn(reader())
        with pytest.raises(KeyError):
            rig.run_until_complete(proc)

    def test_insert_then_read_hits(self):
        rig = build_rig()
        cache = make_cache(rig)
        sizes = []

        def session():
            yield from cache.insert("map", 500_000)
            nbytes = yield from cache.read("map")
            sizes.append(nbytes)

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        assert sizes == [500_000]
        assert cache.hits == 1
        assert "map" in cache

    def test_oversized_object_never_cached(self):
        rig = build_rig()
        cache = make_cache(rig, capacity=1000)

        def session():
            yield from cache.insert("huge", 5000)

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        assert len(cache) == 0

    def test_lru_eviction(self):
        rig = build_rig()
        cache = make_cache(rig, capacity=1000)

        def session():
            yield from cache.insert("a", 400)
            yield from cache.insert("b", 400)
            _ = yield from cache.read("a")   # a becomes most recent
            yield from cache.insert("c", 400)  # evicts b

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_invalidate(self):
        rig = build_rig()
        cache = make_cache(rig)

        def session():
            yield from cache.insert("a", 100)
            yield from cache.insert("b", 100)

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        cache.invalidate("a")
        assert "a" not in cache and "b" in cache
        cache.invalidate()
        assert len(cache) == 0


class TestFetchThrough:
    def test_miss_fetches_and_fills(self):
        rig = build_rig()
        cache = make_cache(rig)
        warden = rig.wardens["map"]
        city = MAPS[1]
        outcomes = []

        def session():
            for _ in range(2):
                result = yield from cache.fetch_through(
                    city.name, lambda: warden.fetch_map(city, "full")
                )
                outcomes.append(result)

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        assert outcomes[0] == (city.bytes_at("full"), False)
        assert outcomes[1] == (city.bytes_at("full"), True)
        # The second access never touched the network (one RPC = one
        # request transfer + one reply transfer).
        assert rig.link.transfer_count == 2

    def test_read_only_mode_never_fills(self):
        rig = build_rig()
        cache = make_cache(rig, write_back=False)
        warden = rig.wardens["map"]
        city = MAPS[1]

        def session():
            for _ in range(2):
                yield from cache.fetch_through(
                    city.name, lambda: warden.fetch_map(city, "full")
                )

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        assert len(cache) == 0
        assert rig.link.transfer_count == 4  # both accesses hit the network


class TestEnergyTradeoff:
    def measure_repeated_access(self, use_cache, accesses=4):
        rig = build_rig(pm_enabled=True)
        warden = rig.wardens["map"]
        city = MAPS[0]  # 1.9 MB: large enough for the disk to win
        cache = make_cache(rig) if use_cache else None

        def session():
            for _ in range(accesses):
                if cache is not None:
                    yield from cache.fetch_through(
                        city.name, lambda: warden.fetch_map(city, "full")
                    )
                else:
                    yield from warden.fetch_map(city, "full")
                yield rig.sim.timeout(5.0)  # think time between accesses

        proc = rig.sim.spawn(session())
        return rig.run_until_complete(proc)

    def test_cache_saves_energy_for_repeated_large_fetches(self):
        """The disk (fast, 2.1 W active) beats the 2 Mb/s wireless
        fetch (slow, 2.5 W + idle waiting) for large repeated objects —
        the crossover the spin-down literature predicts."""
        uncached = self.measure_repeated_access(use_cache=False)
        cached = self.measure_repeated_access(use_cache=True)
        assert cached < uncached

    def test_disk_spins_up_for_cache_hit_from_standby(self):
        rig = build_rig(pm_enabled=True)  # disk starts in standby
        cache = make_cache(rig)
        assert rig.machine["disk"].state == Disk.STANDBY

        def session():
            yield from cache.insert("obj", 1_000_000)

        proc = rig.sim.spawn(session())
        start = rig.sim.now
        rig.run_until_complete(proc)
        elapsed = rig.sim.now - start
        # Includes the spin-up delay plus the transfer time.
        assert elapsed >= rig.machine["disk"].spinup_seconds

    def test_cache_activity_defers_spindown_then_disk_rests(self):
        rig = build_rig(pm_enabled=True)
        cache = make_cache(rig)

        def session():
            yield from cache.insert("obj", 100_000)

        proc = rig.sim.spawn(session())
        rig.run_until_complete(proc)
        assert rig.machine["disk"].state == Disk.IDLE
        rig.sim.run(until=rig.sim.now + 11.0)
        assert rig.machine["disk"].state == Disk.STANDBY
