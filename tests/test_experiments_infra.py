"""Tests for the experiment infrastructure: rig, runner, configs."""

import pytest

from repro.analysis import TrialStats
from repro.apps import DEFAULT_COSTS
from repro.core import Upcall, Viceroy
from repro.experiments import build_rig, run_trials, trial_costs
from repro.experiments.fidelity_study import (
    MAP_CONFIGS,
    SPEECH_CONFIGS,
    VIDEO_CONFIGS,
    WEB_CONFIGS,
)
from repro.sim import Simulator


class TestBuildRig:
    def test_default_rig_has_all_parts(self):
        rig = build_rig()
        assert set(rig.apps) == {"video", "speech", "map", "web"}
        assert set(rig.wardens) == {"video", "speech", "map", "web"}
        assert set(rig.servers) == {"video", "janus", "map", "distill"}
        assert rig.machine.power > 0
        assert rig.link.bandwidth_bps == 2e6

    def test_paper_priorities_by_default(self):
        rig = build_rig()
        priorities = {name: app.priority for name, app in rig.apps.items()}
        assert priorities["speech"] < priorities["video"]
        assert priorities["video"] < priorities["map"]
        assert priorities["map"] < priorities["web"]

    def test_priority_override(self):
        rig = build_rig(priorities={"speech": 9, "video": 1, "map": 2, "web": 3})
        assert rig.apps["speech"].priority == 9

    def test_run_until_complete_raises_on_deadlock(self):
        rig = build_rig()

        def stuck():
            yield rig.sim.event()  # never triggered

        proc = rig.sim.spawn(stuck())
        with pytest.raises(RuntimeError):
            rig.run_until_complete(proc)

    def test_run_until_complete_returns_energy_at_finish(self):
        rig = build_rig()

        def brief():
            yield rig.sim.timeout(2.0)

        proc = rig.sim.spawn(brief())
        energy = rig.run_until_complete(proc)
        assert energy == pytest.approx(rig.machine.power * 2.0, rel=0.01)

    def test_zoned_rig(self):
        rig = build_rig(zoned=(2, 4))
        assert rig.machine["display"].zones == 8

    def test_think_time_applied_to_map_and_web(self):
        rig = build_rig(think_time_s=7.5)
        assert rig.apps["map"].think_time.seconds == 7.5
        assert rig.apps["web"].think_time.seconds == 7.5


class TestRunner:
    def test_trial_zero_is_unperturbed(self):
        assert trial_costs(0) is DEFAULT_COSTS

    def test_later_trials_perturb_deterministically(self):
        a = trial_costs(3)
        b = trial_costs(3)
        assert a == b
        assert a != DEFAULT_COSTS
        assert a.decode_s_per_byte == pytest.approx(
            DEFAULT_COSTS.decode_s_per_byte, rel=0.05
        )

    def test_run_trials_returns_stats(self):
        calls = []

        def experiment(costs):
            calls.append(costs)
            return 100.0 + len(calls)

        stats = run_trials(experiment, trials=5)
        assert isinstance(stats, TrialStats)
        assert stats.n == 5
        assert len(calls) == 5

    def test_run_trials_validates_count(self):
        with pytest.raises(ValueError):
            run_trials(lambda c: 1.0, trials=0)


class TestConfigTables:
    def test_video_configs_cover_figure6_bars(self):
        assert set(VIDEO_CONFIGS) == {
            "baseline", "hw-only", "premiere-b", "premiere-c",
            "reduced-window", "combined",
        }

    def test_speech_configs_cover_figure8_bars(self):
        assert set(SPEECH_CONFIGS) == {
            "baseline", "hw-only", "reduced", "remote", "hybrid",
            "remote-reduced", "hybrid-reduced",
        }

    def test_map_configs_cover_figure10_bars(self):
        assert set(MAP_CONFIGS) == {
            "baseline", "hw-only", "minor-filter", "secondary-filter",
            "cropped", "crop-minor", "crop-secondary",
        }

    def test_web_configs_cover_figure13_bars(self):
        assert set(WEB_CONFIGS) == {
            "baseline", "hw-only", "jpeg-75", "jpeg-50", "jpeg-25", "jpeg-5",
        }

    def test_only_baselines_disable_power_management(self):
        for configs in (VIDEO_CONFIGS, MAP_CONFIGS, WEB_CONFIGS):
            for name, config in configs.items():
                assert config[0] == (name != "baseline")


class TestDynamicPriority:
    def test_set_priority_changes_degrade_order(self):
        rig = build_rig()
        viceroy = Viceroy(rig.sim)
        for app in rig.apps.values():
            viceroy.register_application(app)
        assert viceroy.ladder.pick_degrade().name == "speech"
        viceroy.set_priority("speech", 100)
        assert viceroy.ladder.pick_degrade().name == "video"

    def test_set_priority_unknown_app_raises(self):
        viceroy = Viceroy(Simulator())
        with pytest.raises(KeyError):
            viceroy.set_priority("ghost", 1)


class TestUpcallRecord:
    def test_upcall_fields_immutable(self):
        upcall = Upcall(1.0, "degrade", "video", "premiere-c")
        assert upcall.time == 1.0
        assert upcall.kind == "degrade"
        with pytest.raises(AttributeError):
            upcall.kind = "upgrade"
