"""Tests for the network substrate (link, RPC, servers)."""

import pytest

from repro.hardware import WaveLan, build_machine
from repro.net import INTERRUPT_PROCESS, Link, NetworkError, RpcChannel, Server
from repro.sim import Simulator


def make_link(sim, **kwargs):
    machine = build_machine(sim)
    return machine, Link(machine, **kwargs)


class TestLink:
    def test_transfer_time_scales_with_bytes(self):
        sim = Simulator()
        _machine, link = make_link(sim, bandwidth_bps=2e6, latency=0.0)
        # 250 kB at 2 Mb/s = 1 second
        assert link.transfer_time(250_000) == pytest.approx(1.0)

    def test_latency_added_once_per_transfer(self):
        sim = Simulator()
        _machine, link = make_link(sim, bandwidth_bps=2e6, latency=0.05)
        assert link.transfer_time(0) == pytest.approx(0.05)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        machine = build_machine(sim)
        with pytest.raises(NetworkError):
            Link(machine, bandwidth_bps=0)
        with pytest.raises(NetworkError):
            Link(machine, latency=-1)
        with pytest.raises(NetworkError):
            Link(machine, interrupt_fraction=2.0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        _machine, link = make_link(sim)

        def bad():
            yield from link.recv(-1)

        sim.spawn(bad())
        with pytest.raises(NetworkError):
            sim.run()

    def test_invalid_direction_rejected(self):
        sim = Simulator()
        _machine, link = make_link(sim)

        def bad():
            yield from link.transfer(10, "sideways")

        sim.spawn(bad())
        with pytest.raises(NetworkError):
            sim.run()

    def test_transfer_wakes_nic_and_returns_to_resting(self):
        sim = Simulator()
        machine, link = make_link(sim, latency=0.0)
        machine["wavelan"].set_resting_state(WaveLan.STANDBY)
        states = []

        def app():
            yield from link.recv(250_000)
            states.append(machine["wavelan"].state)

        sim.spawn(app())
        sim.schedule(0.5, lambda t: states.append(machine["wavelan"].state))
        sim.run()
        assert states == [WaveLan.RECV, WaveLan.STANDBY]

    def test_transfers_serialize_fifo(self):
        sim = Simulator()
        _machine, link = make_link(sim, bandwidth_bps=2e6, latency=0.0)
        done = []

        def fetch(tag):
            yield from link.recv(250_000)  # 1 s each
            done.append((tag, sim.now))

        sim.spawn(fetch("a"))
        sim.spawn(fetch("b"))
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_interrupt_energy_attributed_during_transfer(self):
        sim = Simulator()
        machine, link = make_link(sim, latency=0.0, interrupt_fraction=0.25)

        def app():
            yield from link.recv(250_000)

        sim.spawn(app())
        sim.run()
        report = machine.energy_report()
        assert report[INTERRUPT_PROCESS] > 0
        # 25% of the machine energy during the 1 s transfer window.
        assert report[INTERRUPT_PROCESS] == pytest.approx(
            0.25 * machine.energy_total, rel=0.01
        )

    def test_counters_track_traffic(self):
        sim = Simulator()
        _machine, link = make_link(sim, latency=0.0)

        def app():
            yield from link.recv(1000)
            yield from link.xmit(500)

        sim.spawn(app())
        sim.run()
        assert link.bytes_transferred == 1500
        assert link.transfer_count == 2


class TestServer:
    def test_service_time_scales_with_speed(self):
        assert Server("janus", speed=2.0).service_time(4.0) == pytest.approx(2.0)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            Server("x", speed=0.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Server("x").service_time(-1.0)

    def test_serve_advances_time_and_counters(self):
        sim = Simulator()
        server = Server("janus", speed=1.0)

        def client():
            yield from server.serve(sim, 3.0)

        sim.spawn(client())
        sim.run()
        assert sim.now == pytest.approx(3.0)
        assert server.requests_served == 1
        assert server.busy_seconds == pytest.approx(3.0)


class TestRpc:
    def test_call_round_trip_time(self):
        sim = Simulator()
        machine, link = make_link(sim, bandwidth_bps=2e6, latency=0.0)
        server = Server("janus", speed=1.0)
        channel = RpcChannel(link, server)
        elapsed = []

        def client():
            took = yield from channel.call(250_000, 250_000, work_units=2.0)
            elapsed.append(took)

        sim.spawn(client())
        sim.run()
        # 1 s xmit + 2 s server + 1 s recv
        assert elapsed == [pytest.approx(4.0)]
        assert channel.calls == 1

    def test_nic_receive_ready_while_waiting_for_reply(self):
        sim = Simulator()
        machine, link = make_link(sim, bandwidth_bps=2e6, latency=0.0)
        machine["wavelan"].set_resting_state(WaveLan.STANDBY)
        server = Server("janus", speed=1.0)
        channel = RpcChannel(link, server)
        observed = []

        def client():
            yield from channel.call(250_000, 250_000, work_units=2.0)

        # At t=2.0 the request (1 s) is done and the server is computing.
        sim.schedule(2.0, lambda t: observed.append(machine["wavelan"].state))
        sim.spawn(client())
        sim.run()
        assert observed == [WaveLan.RECV]
        assert machine["wavelan"].state == WaveLan.STANDBY

    def test_zero_work_call_skips_server_wait(self):
        sim = Simulator()
        machine, link = make_link(sim, bandwidth_bps=2e6, latency=0.0)
        channel = RpcChannel(link, Server("echo"))

        def client():
            yield from channel.call(250_000, 250_000)

        sim.spawn(client())
        sim.run()
        assert sim.now == pytest.approx(2.0)
