"""SnapshotStore pruning: keep-latest budgets, pins, dry runs."""

import os

import pytest

from repro import cli
from repro.snapshot.disk import SnapshotStore
from repro.snapshot.protocol import SnapshotError
from repro.snapshot.state import PAYLOAD_VERSION, Snapshot


def fill_store(directory, n=5):
    """n snapshots k0..k(n-1), k0 oldest by mtime."""
    store = SnapshotStore(directory)
    for i in range(n):
        payload = {"version": PAYLOAD_VERSION, "time": float(i),
                   "events": [], "states": []}
        store.put(f"k{i}", Snapshot(payload))
        # Spread mtimes deterministically instead of sleeping.
        stamp = 1_000_000 + i
        os.utime(store.path(f"k{i}"), (stamp, stamp))
    return store


class TestPrune:
    def test_keeps_latest_n(self, tmp_path):
        store = fill_store(tmp_path)
        report = store.prune(keep_latest=2)
        assert report["kept"] == ["k4", "k3"]
        assert report["deleted"] == ["k2", "k1", "k0"]
        assert sorted(store.keys()) == ["k3", "k4"]

    def test_pinned_survive_and_do_not_consume_budget(self, tmp_path):
        store = fill_store(tmp_path)
        store.pin("k0")  # the oldest — prime pruning candidate
        report = store.prune(keep_latest=2)
        assert "k0" in report["kept"]
        assert report["pinned"] == ["k0"]
        # The budget still kept the two newest unpinned snapshots.
        assert sorted(store.keys()) == ["k0", "k3", "k4"]

    def test_latest_survives(self, tmp_path):
        store = fill_store(tmp_path)
        store.prune(keep_latest=1)
        assert store.keys() == ["k4"]
        assert store.get("k4") is not None

    def test_keep_zero_deletes_all_unpinned(self, tmp_path):
        store = fill_store(tmp_path, n=3)
        store.pin("k1")
        store.prune(keep_latest=0)
        assert store.keys() == ["k1"]

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = fill_store(tmp_path)
        report = store.prune(keep_latest=1, dry_run=True)
        assert len(report["deleted"]) == 4
        assert len(store) == 5

    def test_negative_budget_rejected(self, tmp_path):
        store = fill_store(tmp_path, n=1)
        with pytest.raises(ValueError):
            store.prune(keep_latest=-1)

    def test_prune_is_idempotent(self, tmp_path):
        store = fill_store(tmp_path)
        store.prune(keep_latest=2)
        report = store.prune(keep_latest=2)
        assert report["deleted"] == []
        assert sorted(store.keys()) == ["k3", "k4"]


class TestPins:
    def test_pin_unpin(self, tmp_path):
        store = fill_store(tmp_path, n=2)
        store.pin("k0")
        assert store.pinned("k0")
        store.unpin("k0")
        assert not store.pinned("k0")

    def test_pin_missing_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotError):
            store.pin("nope")

    def test_discard_removes_pin_marker(self, tmp_path):
        store = fill_store(tmp_path, n=1)
        store.pin("k0")
        store.discard("k0")
        assert not store.pinned("k0")
        assert not os.path.exists(store.pin_path("k0"))


class TestGcCli:
    def test_gc_command(self, tmp_path, capsys):
        store = fill_store(tmp_path / "snaps")
        store.pin("k0")
        code = cli.main([
            "snapshot", "gc", "--snapshot-dir", str(tmp_path / "snaps"),
            "--keep-latest", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "deleted 2" in out
        assert "1 pinned" in out
        assert sorted(store.keys()) == ["k0", "k3", "k4"]

    def test_gc_dry_run(self, tmp_path, capsys):
        fill_store(tmp_path / "snaps")
        code = cli.main([
            "snapshot", "gc", "--snapshot-dir", str(tmp_path / "snaps"),
            "--keep-latest", "1", "--dry-run",
        ])
        assert code == 0
        assert "would delete 4" in capsys.readouterr().out
        assert len(SnapshotStore(tmp_path / "snaps")) == 5

    def test_gc_requires_arguments(self, capsys, tmp_path):
        assert cli.main(["snapshot", "gc", "--keep-latest", "1"]) == 2
        assert cli.main([
            "snapshot", "gc", "--snapshot-dir", str(tmp_path),
        ]) == 2
