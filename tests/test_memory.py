"""Tests for the physical-memory / paging model (paper §3.7 caveat)."""

import pytest

from repro.hardware import Disk, MemoryError_, MemorySystem, build_machine
from repro.sim import Simulator


def make_memory(capacity_mb=64.0, **kwargs):
    sim = Simulator()
    machine = build_machine(sim)
    return sim, machine, MemorySystem(machine, capacity_mb=capacity_mb, **kwargs)


class TestWorkingSets:
    def test_validation(self):
        sim, machine, memory = make_memory()
        with pytest.raises(MemoryError_):
            MemorySystem(machine, capacity_mb=0)
        with pytest.raises(MemoryError_):
            memory.declare("app", -1)

    def test_pressure_zero_when_fitting(self):
        _sim, _machine, memory = make_memory(64)
        memory.declare("a", 30)
        memory.declare("b", 30)
        assert not memory.oversubscribed
        assert memory.pressure == 0.0
        assert memory.paging_fraction() == 0.0

    def test_pressure_grows_with_oversubscription(self):
        _sim, _machine, memory = make_memory(64)
        memory.declare("a", 48)
        memory.declare("b", 48)  # 96 MB on 64 -> pressure 0.5
        assert memory.oversubscribed
        assert memory.pressure == pytest.approx(0.5)
        assert memory.paging_fraction() == pytest.approx(0.25)

    def test_release_relieves_pressure(self):
        _sim, _machine, memory = make_memory(64)
        memory.declare("a", 48)
        memory.declare("b", 48)
        memory.release("b")
        assert not memory.oversubscribed

    def test_redeclare_updates(self):
        _sim, _machine, memory = make_memory(64)
        memory.declare("a", 48)
        memory.declare("a", 20)
        assert memory.resident_mb == 20

    def test_paging_fraction_capped(self):
        _sim, _machine, memory = make_memory(10, fault_fraction_per_pressure=5.0)
        memory.declare("a", 100)
        assert memory.paging_fraction() == pytest.approx(0.9)


class TestPagedCompute:
    def test_no_pressure_is_plain_compute(self):
        sim, machine, memory = make_memory(64)
        memory.declare("a", 30)

        def burst():
            yield from memory.compute(2.0, "a")

        proc = sim.spawn(burst())
        sim.run()
        machine.advance()
        assert sim.now == pytest.approx(2.0)
        assert memory.faults == 0

    def test_pressure_stretches_burst_and_faults(self):
        sim, machine, memory = make_memory(64)
        memory.declare("a", 48)
        memory.declare("b", 48)  # paging fraction 0.25

        def burst():
            yield from memory.compute(3.0, "a")

        proc = sim.spawn(burst())
        sim.run()
        assert memory.faults > 0
        # 3 s of compute at 25% paging -> ~4 s wall (+ disk transfer
        # granularity).
        assert sim.now == pytest.approx(4.0, rel=0.1)

    def test_fault_energy_attributed_to_kernel(self):
        sim, machine, memory = make_memory(64)
        memory.declare("a", 60)
        memory.declare("b", 60)

        def burst():
            yield from memory.compute(2.0, "a")

        sim.spawn(burst())
        sim.run()
        report = machine.energy_report()
        assert report.get("kernel", 0) > 0

    def test_paging_keeps_disk_busy(self):
        sim, machine, memory = make_memory(64)
        machine["disk"].standby()
        memory.declare("a", 60)
        memory.declare("b", 60)

        def burst():
            yield from memory.compute(1.0, "a")

        sim.spawn(burst())
        sim.run()
        # The disk had to spin up to service faults.
        assert machine["disk"].state == Disk.IDLE
        assert memory.faults > 0

    def test_concurrency_can_increase_energy_per_work(self):
        """The paper's §3.7 caveat, made measurable: two apps whose
        working sets fit individually but not together consume more
        energy running concurrently than sequentially."""

        def sequential():
            sim, machine, memory = make_memory(64)

            def session():
                memory.declare("a", 40)
                yield from memory.compute(3.0, "a")
                memory.release("a")
                memory.declare("b", 40)
                yield from memory.compute(3.0, "b")
                memory.release("b")

            proc = sim.spawn(session())
            while proc.alive:
                sim.step()
            machine.advance()
            return machine.energy_total

        def concurrent():
            sim, machine, memory = make_memory(64)
            memory.declare("a", 40)
            memory.declare("b", 40)  # 80 MB on 64: thrashing

            def worker(tag):
                yield from memory.compute(3.0, tag)

            pa = sim.spawn(worker("a"))
            pb = sim.spawn(worker("b"))
            while pa.alive or pb.alive:
                sim.step()
            machine.advance()
            return machine.energy_total

        assert concurrent() > sequential()
