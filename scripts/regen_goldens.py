#!/usr/bin/env python
"""Re-bless the golden decision spines under tests/goldens/.

Run this ONLY when a controller behaviour change is intentional::

    PYTHONPATH=src python scripts/regen_goldens.py [scenario ...]

With no arguments every scenario in tests/golden_scenarios.py is
regenerated; name scenarios to regenerate a subset.  Review the diff of
the golden files before committing — each changed line is a decision
the controller now takes differently, and ``python -m repro diff`` of
before/after traces is the readable view of the same change.

Pass ``--campaign`` to (also) re-bless the fleet campaign outcome
golden (task ordering + retry counts, ``tests/goldens/campaign-demo``).

Pass ``--signatures`` to (also) re-bless the per-phase energy
signatures (``tests/goldens/*.sig.json``) — the joule-vector goldens
``repro verify-profile`` checks runs against.  Review changed phases
the same way: each moved joule count is an energy-behaviour change.

Pass ``--matrix`` to (also) re-bless the policy diff matrix golden
(``tests/goldens/policy-matrix.json``) — the N-way
``repro sweep --diff-against`` document over the pinned candidate
grid.  Each changed row is a policy whose energy/divergence profile
against the baseline moved.

Pass ``--fleet-matrix`` to (also) re-bless the fleet robustness matrix
golden (``tests/goldens/fleet-matrix.json``) — the per-device x
per-policy document over the pinned generated fleet
(``repro sweep --fleet-size 4 --fleet-seed 7 --diff-against default``).
"""

import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

from repro.obs.diff import diff_spines, read_spine_jsonl, write_spine_jsonl  # noqa: E402
from tests.golden_scenarios import (  # noqa: E402
    CAMPAIGN_GOLDEN,
    FLEET_MATRIX_GOLDEN,
    GOLDEN_DIR,
    MATRIX_GOLDEN,
    SCENARIOS,
    SIGNATURE_SCENARIOS,
    golden_path,
    fleet_matrix_golden_path,
    matrix_golden_path,
    run_campaign_scenario,
    run_fleet_matrix_scenario,
    run_matrix_scenario,
    run_scenario,
    run_scenario_signature,
    signature_path,
)


def regen_campaign():
    path = os.path.join(GOLDEN_DIR, f"{CAMPAIGN_GOLDEN}.json")
    record = run_campaign_scenario()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            old = json.load(handle)
        if old == record:
            print(f"{CAMPAIGN_GOLDEN}: unchanged ({len(record)} tasks)")
            return
        print(f"{CAMPAIGN_GOLDEN}: outcome changed")
        for before, after in zip(old, record):
            if before != after:
                print(f"  {before} -> {after}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"{CAMPAIGN_GOLDEN}: wrote {path} ({len(record)} tasks)")


def regen_matrix():
    path = matrix_golden_path()
    matrix = run_matrix_scenario()
    document = matrix.document()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            if handle.read() == document:
                print(f"{MATRIX_GOLDEN}: unchanged "
                      f"({len(matrix.rows)} rows)")
                return
        print(f"{MATRIX_GOLDEN}: matrix changed — review the row diff")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"{MATRIX_GOLDEN}: wrote {path} ({len(matrix.rows)} rows)")


def regen_fleet_matrix():
    path = fleet_matrix_golden_path()
    matrix = run_fleet_matrix_scenario()
    document = matrix.document()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            if handle.read() == document:
                print(f"{FLEET_MATRIX_GOLDEN}: unchanged "
                      f"({len(matrix.rows)} rows, "
                      f"{len(matrix.devices)} devices)")
                return
        print(f"{FLEET_MATRIX_GOLDEN}: matrix changed — review the row diff")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"{FLEET_MATRIX_GOLDEN}: wrote {path} ({len(matrix.rows)} rows, "
          f"{len(matrix.devices)} devices)")


def regen_signatures(names):
    from repro.obs.signature import diff_signatures, read_signature, \
        write_signature

    for name in names:
        path = signature_path(name)
        sig = run_scenario_signature(name)
        if os.path.exists(path):
            old = read_signature(path)
            diff = diff_signatures(old, sig)
            if not diff.out_of_band and diff.behaviour_match \
                    and old["phase_count"] == sig["phase_count"]:
                print(f"{name}: signature unchanged "
                      f"({sig['phase_count']} phases, "
                      f"{sig['total_joules']:.1f} J)")
                continue
            print(f"{name}: signature changed vs previous golden:")
            print("  " + diff.render().replace("\n", "\n  "))
        write_signature(sig, path)
        print(f"{name}: wrote {path} ({sig['phase_count']} phases, "
              f"{sig['total_joules']:.1f} J)")


def main(argv):
    campaign = "--campaign" in argv
    signatures = "--signatures" in argv
    matrix = "--matrix" in argv
    fleet_matrix = "--fleet-matrix" in argv
    argv = [a for a in argv
            if a not in ("--campaign", "--signatures", "--matrix",
                         "--fleet-matrix")]
    if campaign:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        regen_campaign()
        if not argv and not signatures and not matrix \
                and not fleet_matrix:
            return 0
    if matrix:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        regen_matrix()
        if not argv and not signatures and not fleet_matrix:
            return 0
    if fleet_matrix:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        regen_fleet_matrix()
        if not argv and not signatures:
            return 0
    if signatures:
        sig_names = argv or list(SIGNATURE_SCENARIOS)
        unknown = [n for n in sig_names if n not in SIGNATURE_SCENARIOS]
        if unknown:
            print(f"no signature golden for: {', '.join(unknown)} "
                  f"(have: {', '.join(SIGNATURE_SCENARIOS)})",
                  file=sys.stderr)
            return 2
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        regen_signatures(sig_names)
        if not argv:
            return 0
    names = argv or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)} "
              f"(have: {', '.join(sorted(SCENARIOS))})", file=sys.stderr)
        return 2
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in names:
        path = golden_path(name)
        spine = run_scenario(name)
        if os.path.exists(path):
            old = read_spine_jsonl(path)
            diff = diff_spines(old, spine, label_a="old", label_b="new")
            if diff.identical:
                print(f"{name}: unchanged ({len(spine)} decisions)")
                continue
            print(f"{name}: {len(diff.windows)} divergence window(s) "
                  f"vs previous golden:")
            print("  " + diff.render().replace("\n", "\n  "))
        count = write_spine_jsonl(spine, path)
        print(f"{name}: wrote {path} ({count} decisions)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
