"""Calibration harness: prints headline percentages vs paper bands.

Run after changing cost-model or hardware constants:

    python scripts/calibrate.py [--json PATH]

Exits nonzero when any band misses its paper range, so CI can gate on
it.  The band definitions live in ``repro.experiments.calibration``
(shared with ``python -m repro calibrate``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.calibration import (
    calibration_report,
    render_report,
    report_ok,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the structured report as JSON")
    args = parser.parse_args(argv)

    report = calibration_report()
    print(render_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if report_ok(report) else 1


if __name__ == "__main__":
    sys.exit(main())
