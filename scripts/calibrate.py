"""Calibration harness: prints headline percentages vs paper bands.

Run after changing cost-model or hardware constants:

    python scripts/calibrate.py
"""

from __future__ import annotations

import sys

from repro.experiments.fidelity_study import (
    map_energy_table,
    speech_energy_table,
    video_energy_table,
    web_energy_table,
)


def band(label, values, lo, hi, vs="hw-only"):
    measured_lo, measured_hi = min(values), max(values)
    flag = "OK " if (measured_hi >= lo and measured_lo <= hi) else "MISS"
    print(
        f"  [{flag}] {label:<28} vs {vs:<8} "
        f"measured {measured_lo * 100:5.1f}-{measured_hi * 100:5.1f}%   "
        f"paper {lo * 100:.0f}-{hi * 100:.0f}%"
    )


def savings(table, config, reference):
    ref = table[reference]
    cfg = table[config]
    return [1.0 - cfg[obj] / ref[obj] for obj in ref]


def main():
    print("video (Figure 6)")
    video = video_energy_table()
    base = video["baseline"]
    print("   baseline energies:",
          {k: round(v) for k, v in base.items()})
    band("hw-only", savings(video, "hw-only", "baseline"), 0.09, 0.10, "baseline")
    band("premiere-c", savings(video, "premiere-c", "hw-only"), 0.16, 0.17)
    band("reduced-window", savings(video, "reduced-window", "hw-only"), 0.19, 0.20)
    band("combined", savings(video, "combined", "hw-only"), 0.28, 0.30)
    band("combined vs baseline", savings(video, "combined", "baseline"),
         0.34, 0.36, "baseline")

    print("speech (Figure 8)")
    speech = speech_energy_table()
    print("   baseline energies:",
          {k: round(v) for k, v in speech["baseline"].items()})
    band("hw-only", savings(speech, "hw-only", "baseline"), 0.33, 0.34, "baseline")
    band("reduced", savings(speech, "reduced", "hw-only"), 0.25, 0.46)
    band("remote", savings(speech, "remote", "hw-only"), 0.33, 0.44)
    band("hybrid", savings(speech, "hybrid", "hw-only"), 0.47, 0.55)
    band("remote-reduced", savings(speech, "remote-reduced", "hw-only"), 0.42, 0.65)
    band("hybrid-reduced", savings(speech, "hybrid-reduced", "hw-only"), 0.53, 0.70)
    band("hybrid-red vs baseline", savings(speech, "hybrid-reduced", "baseline"),
         0.69, 0.80, "baseline")

    print("map (Figure 10)")
    mp = map_energy_table()
    print("   baseline energies:",
          {k: round(v) for k, v in mp["baseline"].items()})
    band("hw-only", savings(mp, "hw-only", "baseline"), 0.09, 0.19, "baseline")
    band("minor-filter", savings(mp, "minor-filter", "hw-only"), 0.06, 0.51)
    band("secondary-filter", savings(mp, "secondary-filter", "hw-only"), 0.23, 0.55)
    band("cropped", savings(mp, "cropped", "hw-only"), 0.14, 0.49)
    band("crop-secondary", savings(mp, "crop-secondary", "hw-only"), 0.36, 0.66)
    band("lowest vs baseline", savings(mp, "crop-secondary", "baseline"),
         0.46, 0.70, "baseline")

    print("web (Figure 13)")
    web = web_energy_table()
    print("   baseline energies:",
          {k: round(v) for k, v in web["baseline"].items()})
    band("hw-only", savings(web, "hw-only", "baseline"), 0.22, 0.26, "baseline")
    band("jpeg-5", savings(web, "jpeg-5", "hw-only"), 0.04, 0.14)
    band("jpeg-5 vs baseline", savings(web, "jpeg-5", "baseline"),
         0.29, 0.34, "baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
