#!/usr/bin/env python
"""Quickstart: goal-directed energy adaptation in ~40 lines.

Builds a simulated ThinkPad 560X client running the paper's composite
workload (speech + Web + map every 25 seconds, video newsfeed in the
background), gives Odyssey a 6 kJ battery and a duration goal the full-
fidelity workload could not meet, and watches adaptation stretch the
energy to the goal.

Run:  python examples/quickstart.py
"""

from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)

INITIAL_ENERGY_J = 6_000.0


def main():
    # How long would the battery last without adaptation?
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY_J)
    print(f"On {INITIAL_ENERGY_J:.0f} J the workload runs "
          f"{t_hi:.0f}s at full fidelity, {t_lo:.0f}s at lowest fidelity.")

    # Ask Odyssey for a battery life the full-fidelity workload misses.
    goal = derive_goals(t_hi, t_lo, count=3)[1]
    print(f"Asking Odyssey to make the battery last {goal:.0f}s ...")
    result = run_goal_experiment(goal, initial_energy=INITIAL_ENERGY_J)

    print(f"goal met:        {result.goal_met}")
    print(f"residual energy: {result.residual_energy:.0f} J "
          f"({result.residual_energy / INITIAL_ENERGY_J:.1%} of supply)")
    print("adaptations per application:")
    for app, count in sorted(result.adaptations.items()):
        print(f"  {app:8} {count}")

    # The viceroy's trace shows how fidelity evolved (Figure 19 style).
    print("final fidelity levels:")
    final = {}
    for record in result.timeline.category("fidelity"):
        final[record.label] = record.value[0]
    for app, level in sorted(final.items()):
        print(f"  {app:8} {level}")


if __name__ == "__main__":
    main()
