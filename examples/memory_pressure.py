#!/usr/bin/env python
"""Scenario: when does concurrency *cost* energy? (paper §3.7 caveat)

Section 3.7 shows concurrency usually amortizes background power — but
warns that inadequate physical memory flips the sign: competing working
sets page against each other.  This script sweeps physical memory for
a fixed two-application compute workload and prints the crossover.

Run:  python examples/memory_pressure.py
"""

from repro.hardware import MemorySystem, build_machine
from repro.sim import Simulator

WORKING_SET_MB = 40.0
WORK_S = 4.0


def run(capacity_mb, concurrent):
    sim = Simulator()
    machine = build_machine(sim)
    memory = MemorySystem(
        machine, capacity_mb=capacity_mb, fault_fraction_per_pressure=1.2
    )
    if concurrent:
        memory.declare("a", WORKING_SET_MB)
        memory.declare("b", WORKING_SET_MB)
        workers = [
            sim.spawn(memory.compute(WORK_S, tag)) for tag in ("a", "b")
        ]
        while any(w.alive for w in workers):
            sim.step()
    else:
        def session():
            for tag in ("a", "b"):
                memory.declare(tag, WORKING_SET_MB)
                yield from memory.compute(WORK_S, tag)
                memory.release(tag)

        proc = sim.spawn(session())
        while proc.alive:
            sim.step()
    machine.advance()
    return machine.energy_total, memory.faults, sim.now


def main():
    print(f"Two applications, {WORKING_SET_MB:.0f} MB working set and "
          f"{WORK_S:.0f} s of compute each:\n")
    print(f"{'memory':>8} {'sequential':>12} {'concurrent':>12} "
          f"{'ratio':>7} {'faults':>7} {'wall (s)':>9}")
    for capacity in (128, 96, 80, 64, 56, 48):
        seq_energy, _f, _t = run(capacity, concurrent=False)
        conc_energy, faults, wall = run(capacity, concurrent=True)
        ratio = conc_energy / seq_energy
        marker = "  <- thrashing" if ratio > 1.5 else ""
        print(f"{capacity:>6}MB {seq_energy:>11.0f}J {conc_energy:>11.0f}J "
              f"{ratio:>7.2f} {faults:>7} {wall:>9.1f}{marker}")
    print(
        "\nWith ample memory, running the applications together costs the"
        "\nsame energy as running them back to back.  Once the combined"
        "\nworking sets exceed physical memory, paging traffic through the"
        "\nsingle disk head dominates — the §3.7 caveat, quantified."
    )


if __name__ == "__main__":
    main()
