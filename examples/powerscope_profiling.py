#!/usr/bin/env python
"""Scenario: profile a mixed workload with PowerScope.

Runs the speech recognizer and Web browser concurrently on the
simulated client while PowerScope samples current and PC/PID at 600 Hz,
then prints the two-level energy profile of the paper's Figure 2 —
per-process summary plus per-procedure detail.

Run:  python examples/powerscope_profiling.py
"""

from repro.experiments import build_rig
from repro.powerscope import profile_run, render_profile
from repro.workloads import IMAGES, UTTERANCES


def main():
    rig = build_rig(pm_enabled=False)
    speech = rig.apps["speech"]
    web = rig.apps["web"]

    def speech_session():
        for utterance in UTTERANCES[:3]:
            yield from speech.recognize(utterance)
            yield rig.sim.timeout(2.0)

    def browse_session():
        for image in IMAGES[:3]:
            yield from web.browse(image)

    rig.sim.spawn(speech_session(), name="speech-session")
    rig.sim.spawn(browse_session(), name="browse-session")

    profile = profile_run(rig.machine, until=30.0, rate_hz=600.0)
    print("PowerScope profile of 30 s of concurrent speech + browsing\n")
    print(render_profile(profile, detail_process="janus"))

    print("\nGround-truth cross-check (continuous integration):")
    truth = rig.energy_report()
    for process, joules in list(truth.items())[:5]:
        sampled = profile.energy_of(process)
        print(f"  {process:<24} sampled {sampled:8.1f} J   "
              f"ground truth {joules:8.1f} J")


if __name__ == "__main__":
    main()
