#!/usr/bin/env python
"""Scenario: the original Odyssey — video adapting to variable bandwidth.

A client streams video over a wireless link whose quality varies (the
paper's Section 2.2 example: "a client playing full-color video data
from a server could switch to black and white video when bandwidth
drops, rather than suffering lost frames").  The viceroy passively
estimates bandwidth from observed traffic, the player registers a
resource-expectation window, and upcalls re-fit the compression track
as the link degrades and recovers.

Run:  python examples/bandwidth_adaptation.py
"""

from repro.core import ExpectationMonitor, ExpectationRegistry
from repro.experiments import build_rig
from repro.net import BandwidthEstimator
from repro.workloads.videos import VideoClip


def main():
    rig = build_rig(pm_enabled=True)
    player = rig.apps["video"]
    clip = VideoClip("newsfeed", 60.0, 12.0, 16_250)

    estimator = BandwidthEstimator(rig.link, gain=0.5)
    registry = ExpectationRegistry("bandwidth")
    registry.register(
        "video",
        player.bandwidth_window(clip, player.fidelity),
        player.bandwidth_upcall(clip),
    )
    monitor = ExpectationMonitor(
        rig.sim, registry, lambda: estimator.estimate_bps, period=0.5
    )
    monitor.start()

    # The link fades at t=15 s, collapses at t=30 s, recovers at t=45 s.
    schedule = [(15.0, 1.3e6), (30.0, 0.8e6), (45.0, 2.0e6)]
    for at, bps in schedule:
        rig.sim.schedule(at, lambda _t, b=bps: rig.link.set_bandwidth(b))

    transitions = []
    original = player.set_fidelity

    def tracking_set_fidelity(level):
        transitions.append((rig.sim.now, level))
        return original(level)

    player.set_fidelity = tracking_set_fidelity

    proc = rig.sim.spawn(player.play(clip))
    rig.run_until_complete(proc)

    print("Link schedule: 2.0 Mb/s -> 1.3 (t=15) -> 0.8 (t=30) -> 2.0 (t=45)")
    print(f"\nfidelity transitions ({len(transitions)}):")
    for when, level in transitions:
        print(f"  t={when:6.1f}s  -> {level}")
    print(f"\nframes played: {player.frames_played}, "
          f"late: {player.frames_late}")
    print(f"bandwidth upcalls delivered: {registry.upcalls_delivered}")
    print(f"final estimate: {estimator.estimate_bps / 1e6:.2f} Mb/s, "
          f"final fidelity: {player.fidelity}")


if __name__ == "__main__":
    main()
