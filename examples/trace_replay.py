#!/usr/bin/env python
"""Scenario: replay a recorded user session under different policies.

A session trace (the kind a deployed Odyssey could log) is replayed
three times — without power management, with it, and with every
application at lowest fidelity — to show what each layer saves for a
*realistic interleaved session* rather than a single-application
benchmark.

Run:  python examples/trace_replay.py
"""

from repro.experiments import build_rig
from repro.workloads import SessionTrace

SESSION = """
# Morning commute session: check mail images, glance at the map,
# dictate two notes, watch a bit of the news feed.
0.0    web image-2
12.0   web image-3
25.0   map pittsburgh
45.0   speech utterance-1
52.0   speech utterance-2
60.0   video video-1 20
82.0   map san-jose
105.0  idle 10
"""

CONFIGS = {
    "no power management": dict(pm_enabled=False),
    "hardware PM": dict(pm_enabled=True),
    "hardware PM + lowest fidelity": dict(pm_enabled=True, lowest=True),
}

LOWEST = {
    "speech": "reduced",
    "web": "jpeg-5",
    "map": "crop-secondary",
    "video": "combined",
}


def replay(config):
    lowest = config.pop("lowest", False)
    rig = build_rig(**config)
    if lowest:
        for name, level in LOWEST.items():
            rig.apps[name].set_fidelity(level)
    trace = SessionTrace.parse(SESSION)
    proc = rig.sim.spawn(trace.replay(rig))
    energy = rig.run_until_complete(proc)
    return energy, rig.sim.now


def main():
    print("Replaying a 115-second mixed session under three policies:\n")
    baseline = None
    for label, config in CONFIGS.items():
        energy, span = replay(dict(config))
        if baseline is None:
            baseline = energy
        saving = 1 - energy / baseline
        print(f"  {label:<32} {energy:7.0f} J over {span:5.1f} s"
              f"   ({saving:.1%} vs no PM)")
    print(
        "\nThe session is dominated by think/idle time, so hardware power"
        "\nmanagement carries most of the savings here and fidelity"
        "\nreduction adds the rest — the two compose, which is the paper's"
        "\ncentral claim about combining the approaches."
    )


if __name__ == "__main__":
    main()
