#!/usr/bin/env python
"""Scenario: how much energy does video fidelity reduction save?

Recreates the Section 3.3 study interactively: play one video clip at
every fidelity configuration of Figure 6 and print the energy breakdown
by software component (the figure's bar shadings), showing where each
saving comes from — disk power management, Xanim decode, the X server.

Run:  python examples/video_fidelity.py
"""

from repro.experiments import build_rig
from repro.experiments.fidelity_study import VIDEO_CONFIGS
from repro.workloads import clip_by_name

PROCESSES = ("Idle", "xanim", "X", "odyssey", "Interrupts-WaveLAN")


def play_and_profile(clip, config):
    pm_enabled, level = VIDEO_CONFIGS[config]
    rig = build_rig(pm_enabled=pm_enabled)
    player = rig.apps["video"]
    player.set_fidelity(level)
    process = rig.sim.spawn(player.play(clip))
    total = rig.run_until_complete(process)
    return total, rig.energy_report(), player


def main():
    clip = clip_by_name("video-1")
    print(f"Playing {clip.name}: {clip.duration_s:.0f}s, "
          f"{clip.frame_count} frames, "
          f"{clip.bitrate_bps('baseline') / 1e6:.2f} Mb/s baseline track\n")

    header = f"{'config':<16}{'energy':>10}{'saving':>9}  " + "".join(
        f"{p:>12}" for p in PROCESSES
    )
    print(header)
    print("-" * len(header))

    baseline_total = None
    for config in VIDEO_CONFIGS:
        total, report, _player = play_and_profile(clip, config)
        if baseline_total is None:
            baseline_total = total
        saving = 1 - total / baseline_total
        shares = "".join(
            f"{report.get(p, 0.0):>12.0f}" for p in PROCESSES
        )
        print(f"{config:<16}{total:>9.0f}J{saving:>8.1%}  {shares}")

    print(
        "\nNote how the X server column shrinks only for the reduced-"
        "window configs\nwhile the xanim column follows the compression "
        "level — the paper's Figure 6 observation."
    )


if __name__ == "__main__":
    main()
