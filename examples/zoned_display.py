#!/usr/bin/env python
"""Scenario: what would zoned backlighting buy us? (paper Section 4)

Projects the energy usage of the video player and map viewer on
hypothetical displays whose backlight is divided into 4 or 8
independently controlled zones, lighting only the zones under each
application's window.

Run:  python examples/zoned_display.py
"""

from repro.experiments import measure_map_zoned, measure_video_zoned
from repro.workloads import map_by_name
from repro.workloads.videos import VideoClip


def main():
    clip = VideoClip("demo-clip", 30.0, 12.0, 16_250)
    city = map_by_name("pittsburgh")

    print("Projected energy with zoned backlighting (relative to the "
          "stock display)\n")
    print(f"{'app':<7}{'fidelity':<17}{'zones':<10}{'lit':<5}"
          f"{'energy':>9}{'vs stock':>10}")
    print("-" * 58)

    for config in ("hw-only", "combined"):
        base = measure_video_zoned(clip, config, "no-zones")[0]
        for zones in ("no-zones", "4-zones", "8-zones"):
            energy, lit = measure_video_zoned(clip, config, zones)
            print(f"{'video':<7}{config:<17}{zones:<10}"
                  f"{lit if lit is not None else '-':<5}"
                  f"{energy:>8.0f}J{1 - energy / base:>9.1%}")

    for config in ("hw-only", "crop-secondary"):
        base = measure_map_zoned(city, config, "no-zones")[0]
        for zones in ("no-zones", "4-zones", "8-zones"):
            energy, lit = measure_map_zoned(city, config, zones)
            print(f"{'map':<7}{config:<17}{zones:<10}"
                  f"{lit if lit is not None else '-':<5}"
                  f"{energy:>8.0f}J{1 - energy / base:>9.1%}")

    print("\nThe full-fidelity map spans every zone of the 2x2 display "
          "(no savings);\ncropping shrinks it to 2 of 4 and 3 of 8 zones — "
          "lowering fidelity\nenhances the zoned-backlight benefit, the "
          "paper's Section 4 conclusion.")


if __name__ == "__main__":
    main()
