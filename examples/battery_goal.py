#!/usr/bin/env python
"""Scenario: "make this battery last until my flight lands."

A user on a flight sets a battery-duration goal, then extends it when
the flight is delayed (the paper's Section 5.4 scenario).  The script
prints a live-style trace: residual energy, predicted demand, and every
fidelity adaptation Odyssey performs.

Run:  python examples/battery_goal.py
"""

from repro.experiments import build_goal_rig
from repro.experiments.goal_study import _spawn_workload

INITIAL_ENERGY_J = 6_000.0
GOAL_S = 420.0
DELAY_AT_S = 150.0
DELAY_BY_S = 40.0


def main():
    rig, odyssey, battery = build_goal_rig(INITIAL_ENERGY_J)
    controller = odyssey.set_goal(INITIAL_ENERGY_J, GOAL_S)
    _spawn_workload(rig, horizon=(GOAL_S + DELAY_BY_S) * 1.5)
    odyssey.start()
    rig.sim.schedule(
        DELAY_AT_S, lambda _t: controller.extend_goal(DELAY_BY_S)
    )

    print(f"Goal: {GOAL_S:.0f}s on {INITIAL_ENERGY_J:.0f} J "
          f"(flight delayed +{DELAY_BY_S:.0f}s at t={DELAY_AT_S:.0f}s)\n")
    print(f"{'t (s)':>7} {'residual':>9} {'demand':>9}  event")

    # Periodic status line plus upcall commentary.
    seen_upcalls = 0

    def status(_t):
        nonlocal seen_upcalls
        now = rig.sim.now
        lines = []
        for upcall in odyssey.viceroy.upcalls[seen_upcalls:]:
            lines.append(
                f"{upcall.time:7.1f} {'':>9} {'':>9}  "
                f"{upcall.kind} {upcall.application} -> {upcall.new_level}"
            )
        seen_upcalls = len(odyssey.viceroy.upcalls)
        for line in lines:
            print(line)
        print(f"{now:7.1f} {controller.residual_energy:8.0f}J "
              f"{controller.predicted_demand():8.0f}J")
        if controller.running:
            rig.sim.schedule(30.0, status)

    rig.sim.schedule(30.0, status)

    while rig.sim.now < controller.goal_seconds and not battery.exhausted:
        if not rig.sim.step():
            break
    rig.machine.advance()

    print(f"\ngoal ({controller.goal_seconds:.0f}s after extension): "
          f"{'MET' if not battery.exhausted else 'MISSED'}")
    print(f"battery residual: {battery.residual:.0f} J")
    print(f"adaptations: {odyssey.viceroy.adaptation_counts()}")


if __name__ == "__main__":
    main()
