#!/usr/bin/env python
"""Parallel sweep: the fidelity studies as one fleet campaign.

Builds a campaign with one task per (application, configuration,
workload object) cell, runs it serially and then across a process
pool, and shows the three properties the fleet guarantees:

* parallel aggregates are bit-identical to serial ones,
* a cache-warm re-run executes zero tasks,
* an injected fault becomes a recorded partial result, not a crash.

Run:  python examples/parallel_sweep.py
"""

import tempfile

from repro.fleet import (
    CampaignSpec,
    FleetRunner,
    Task,
    sweep_campaign,
    tables_from_result,
)


def main():
    spec = sweep_campaign(["map", "web"])
    print(f"campaign {spec.name!r}: {len(spec)} independent simulations")

    # Serial baseline, then the same campaign on four workers.
    serial = FleetRunner(jobs=1).run(spec)
    cache_dir = tempfile.mkdtemp(prefix="fleet-cache-")
    parallel = FleetRunner(jobs=4, cache=cache_dir).run(spec)
    identical = tables_from_result(serial) == tables_from_result(parallel)
    print(f"serial:   {serial.telemetry.render()}")
    print(f"parallel: {parallel.telemetry.render()}")
    print(f"aggregates bit-identical: {identical}")

    # Cache-warm re-run: every task is served from disk.
    warm = FleetRunner(jobs=4, cache=cache_dir).run(spec)
    print(f"warm:     {warm.telemetry.render()} "
          f"(executed {warm.telemetry.executed} tasks)")

    # Fault tolerance: a poisoned task is recorded, the rest survive.
    poisoned = CampaignSpec(
        name="poisoned",
        tasks=spec.tasks + (
            Task(id="inject/fault", fn="repro.fleet.library:always_fail"),
        ),
    )
    result = FleetRunner(jobs=4, retries=1, backoff_s=0.01).run(poisoned)
    print(f"poisoned: {result.telemetry.render()}")
    for failure in result.failures:
        print(f"  recorded failure: {failure.task_id} -> {failure.error}")
    tables = tables_from_result(result)
    cells = sum(len(row) for row in tables["map"].values())
    print(f"  partial result still has all {cells} map cells")


if __name__ == "__main__":
    main()
