#!/usr/bin/env python
"""Campaign service: two tenants sharing one warm pool over HTTP.

Starts a `CampaignService` with an HTTP front end on an ephemeral
port, then plays two clients against it with `ServiceClient`:

* tenant "alice" submits a sweep campaign and waits for it,
* tenant "bob" submits the *same* campaign concurrently — every task
  is coalesced onto alice's executions or served from the shared
  cache, so the pool never runs a task twice,
* both tenants' values are identical, and identical to what a
  one-shot `FleetRunner` produces for the same spec.

In real use the service runs in its own process (`python -m repro
serve`) and outlives any one client; it is started in-process here
only so the example is self-contained.

Run:  python examples/service_client.py
"""

import tempfile
import threading

from repro.fleet import FleetRunner, sweep_campaign
from repro.service import CampaignService, ServiceClient, serve


def main():
    spec = sweep_campaign(["map"], trials=2)
    print(f"campaign {spec.name!r}: {len(spec)} independent simulations")

    cache_dir = tempfile.mkdtemp(prefix="service-cache-")
    service = CampaignService(workers=2, cache=cache_dir)
    with service:
        server = serve(service, port=0)  # ephemeral port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        print(f"service listening on {server.endpoint}")

        # Two tenants submit the same campaign at the same time.
        alice = ServiceClient(server.endpoint)
        bob = ServiceClient(server.endpoint)
        a_job = alice.submit(spec, queue="alpha", client="alice")
        b_job = bob.submit(spec, queue="beta", client="bob")
        results = {}
        for name, client, job_id in (("alice", alice, a_job),
                                     ("bob", bob, b_job)):
            status = client.wait(job_id, timeout=300)
            results[name] = client.result(job_id)
            telemetry = status["telemetry"]
            print(f"{name}: job {job_id} {status['state']} "
                  f"(executed {telemetry['succeeded']}, "
                  f"cache-served {telemetry['cached']})")

        executed = sum(r["telemetry"]["succeeded"] for r in results.values())
        print(f"pool executed {executed} tasks for "
              f"{2 * len(spec)} requested — each distinct task ran once")
        print("tenants agree:",
              results["alice"]["values"] == results["bob"]["values"])

        # The service path is bit-identical to a one-shot run.
        direct = FleetRunner(jobs=2).run(spec)
        print("identical to one-shot FleetRunner:",
              results["alice"]["values"] == direct.values)

        server.shutdown()


if __name__ == "__main__":
    main()
