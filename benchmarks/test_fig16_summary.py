"""Figure 16: summary of the energy impact of fidelity.

Every measurement normalized to the same object's baseline (full
fidelity, no power management); each cell reports the min-max across
the four data objects.  Rows cover the four applications, with the
map and Web apps swept over think times 0/5/10/20 s.
"""

from conftest import run_once

from repro.analysis import (
    normalize_to_baseline,
    range_across_objects,
    render_table,
)
from repro.experiments import (
    map_energy_table,
    speech_energy_table,
    video_energy_table,
    web_energy_table,
)

# Paper Figure 16 cells: {(app, think): (hw_pm_range, combined_range)}.
PAPER_BANDS = {
    ("video", None): ((0.90, 0.91), (0.64, 0.66)),
    ("speech", None): ((0.66, 0.67), (0.20, 0.31)),
    ("map", 5.0): ((0.81, 0.91), (0.30, 0.54)),
    ("web", 5.0): ((0.74, 0.78), (0.66, 0.71)),
}


def build_summary():
    """{(app, think): {config: Range}} for the summary's key columns."""
    summary = {}

    video = normalize_to_baseline(video_energy_table())
    summary[("video", None)] = {
        "hw-only": range_across_objects(video["hw-only"]),
        "combined": range_across_objects(video["combined"]),
    }
    speech = normalize_to_baseline(speech_energy_table())
    summary[("speech", None)] = {
        "hw-only": range_across_objects(speech["hw-only"]),
        "combined": range_across_objects(speech["hybrid-reduced"]),
    }
    for think in (0.0, 5.0, 10.0, 20.0):
        mp = normalize_to_baseline(map_energy_table(think_time_s=think))
        summary[("map", think)] = {
            "hw-only": range_across_objects(mp["hw-only"]),
            "combined": range_across_objects(mp["crop-secondary"]),
        }
        web = normalize_to_baseline(web_energy_table(think_time_s=think))
        summary[("web", think)] = {
            "hw-only": range_across_objects(web["hw-only"]),
            "combined": range_across_objects(web["jpeg-5"]),
        }
    return summary


def test_fig16_summary(benchmark, report):
    summary = run_once(benchmark, build_summary)

    rows = []
    for (app, think), cells in summary.items():
        think_label = "N/A" if think is None else f"{think:.0f}"
        rows.append([
            app, think_label, "1.00",
            f"{cells['hw-only']}", f"{cells['combined']}",
        ])
    report(render_table(
        ["Application", "Think (s)", "Baseline", "HW PM", "Combined"],
        rows,
        title="Figure 16 — normalized energy (min-max across 4 objects)",
    ))

    # Every cell below 1.0 and combined below hardware-only PM.
    for (app, think), cells in summary.items():
        assert cells["hw-only"].high < 1.0, (app, think)
        assert cells["combined"].low < cells["hw-only"].high, (app, think)

    # The headline mean: average lowest-fidelity savings across the
    # four applications at 5 s think time is ~36% in the paper.
    means = []
    for app, think in (("video", None), ("speech", None),
                       ("map", 5.0), ("web", 5.0)):
        cells = summary[(app, think)]
        means.append((cells["combined"].low + cells["combined"].high) / 2)
    mean_fraction = sum(means) / len(means)
    report(f"mean lowest-fidelity energy fraction: {mean_fraction:.2f} "
           f"(paper 0.64, i.e. 36% savings)")
    assert 0.45 <= mean_fraction <= 0.75
