"""Figure 4: power consumption of IBM ThinkPad 560X components.

Reproduces the component power table by sweeping each component's
states on the machine model and measuring the whole-machine delta with
the multimeter — the same differential methodology PowerScope used.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.hardware import Disk, Display, WaveLan, build_machine
from repro.hardware import thinkpad560x as tp
from repro.powerscope import Multimeter
from repro.sim import Simulator


def measured_power(machine, settle=1.0):
    """Mean power from multimeter samples in the current state."""
    meter = Multimeter(machine, rate_hz=100.0)
    start = machine.sim.now
    meter.start()
    machine.sim.run(until=start + settle)
    meter.stop()
    amps = [s.amps for s in meter.samples]
    return machine.voltage * sum(amps) / len(amps)


def sweep_component_powers():
    sim = Simulator()
    machine = build_machine(sim)
    rows = []

    def everything_off():
        machine["display"].off()
        machine["disk"].set_state(Disk.OFF)
        machine["wavelan"].set_resting_state(WaveLan.OFF)

    # Baseline with everything off isolates per-component deltas.
    everything_off()
    floor = measured_power(machine)

    sweeps = [
        ("Display", "display", [Display.BRIGHT, Display.DIM]),
        ("WaveLAN", "wavelan", [WaveLan.IDLE, WaveLan.STANDBY]),
        ("Disk", "disk", [Disk.IDLE, Disk.STANDBY]),
    ]
    for label, name, states in sweeps:
        for state in states:
            everything_off()
            if name == "wavelan":
                machine[name].set_resting_state(state)
            else:
                machine[name].set_state(state)
            rows.append((label, state, measured_power(machine) - floor))
    everything_off()
    rows.append(("Other", "all off", measured_power(machine)))

    # The two published totals.
    machine["display"].bright()
    machine["disk"].set_state(Disk.IDLE)
    machine["wavelan"].set_resting_state(WaveLan.IDLE)
    full_on = measured_power(machine)
    machine["display"].dim()
    machine["disk"].standby()
    machine["wavelan"].set_resting_state(WaveLan.STANDBY)
    background = measured_power(machine)
    return rows, full_on, background


PAPER_VALUES = {
    ("Display", Display.BRIGHT): 4.54,
    ("Display", Display.DIM): 1.95,
    ("WaveLAN", WaveLan.IDLE): 1.46,
    ("WaveLAN", WaveLan.STANDBY): 0.18,
    ("Disk", Disk.IDLE): 0.88,
    ("Disk", Disk.STANDBY): 0.16,
}


def test_fig04_power_table(benchmark, report):
    rows, full_on, background = run_once(benchmark, sweep_component_powers)

    table_rows = []
    for label, state, watts in rows:
        paper = PAPER_VALUES.get((label, state))
        table_rows.append(
            (label, state, f"{watts:.2f}",
             f"{paper:.2f}" if paper is not None else "3.20 (base)")
        )
    report(render_table(
        ["Component", "State", "Measured (W)", "Paper (W)"],
        table_rows,
        title="Figure 4 — ThinkPad 560X component power",
    ))
    report(f"Full-on total: measured {full_on:.2f} W, paper {tp.FULL_ON_TOTAL_W} W")
    report(f"Background:    measured {background:.2f} W, paper {tp.BACKGROUND_W} W")

    # Component deltas match Figure 4 closely (correction term aside).
    for (label, state), paper in PAPER_VALUES.items():
        measured = next(w for l, s, w in rows if l == label and s == state)
        assert abs(measured - paper) < 0.15, (label, state)
    assert abs(full_on - tp.FULL_ON_TOTAL_W) < 0.05
    assert abs(background - tp.BACKGROUND_W) < 0.05
