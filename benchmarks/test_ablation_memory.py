"""Ablation: memory pressure under concurrency (paper §3.7 caveat).

The paper notes concurrency *can* increase energy "if physical memory
size is inadequate to accommodate the working sets of two
applications".  Its testbed's 64 MB always sufficed, so the effect was
never measured; this ablation sweeps physical memory size for a fixed
two-application compute workload and shows the crossover from
amortization-wins to thrashing-loses.
"""

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.hardware import MemorySystem, build_machine
from repro.sim import Simulator

WORKING_SET_MB = 40.0  # per application
WORK_S = 4.0           # compute per application


def run_pair(capacity_mb, concurrent):
    sim = Simulator()
    machine = build_machine(sim)
    # A steep fault coefficient models two working sets evicting each
    # other's pages (thrashing), not a single well-behaved overrun.
    memory = MemorySystem(
        machine, capacity_mb=capacity_mb, fault_fraction_per_pressure=1.2
    )

    if concurrent:
        memory.declare("a", WORKING_SET_MB)
        memory.declare("b", WORKING_SET_MB)

        def worker(tag):
            yield from memory.compute(WORK_S, tag)

        pa = sim.spawn(worker("a"))
        pb = sim.spawn(worker("b"))
        while pa.alive or pb.alive:
            sim.step()
    else:
        def session():
            for tag in ("a", "b"):
                memory.declare(tag, WORKING_SET_MB)
                yield from memory.compute(WORK_S, tag)
                memory.release(tag)

        proc = sim.spawn(session())
        while proc.alive:
            sim.step()
    machine.advance()
    return machine.energy_total, memory.faults


def sweep():
    table = {}
    for capacity in (96.0, 64.0, 48.0):
        seq_energy, _ = run_pair(capacity, concurrent=False)
        conc_energy, faults = run_pair(capacity, concurrent=True)
        table[capacity] = {
            "sequential": seq_energy,
            "concurrent": conc_energy,
            "faults": faults,
        }
    return table


def test_ablation_memory(benchmark, report):
    table = run_once(benchmark, sweep)

    rows = []
    for capacity, m in table.items():
        ratio = m["concurrent"] / m["sequential"]
        rows.append([
            f"{capacity:.0f} MB",
            f"{m['sequential']:.0f}",
            f"{m['concurrent']:.0f}",
            f"{ratio:.2f}",
            str(m["faults"]),
        ])
    report(render_table(
        ["Physical memory", "Sequential (J)", "Concurrent (J)",
         "Conc/Seq", "Faults"],
        rows,
        title="Ablation — §3.7 memory-pressure caveat "
              "(two 40 MB working sets, 4 s compute each)",
    ))

    # Ample memory: concurrency is harmless for this pure-compute pair.
    roomy = table[96.0]
    assert roomy["concurrent"] == pytest.approx(
        roomy["sequential"], rel=0.02
    )
    assert roomy["faults"] == 0
    # Inadequate memory: thrashing makes concurrency strictly worse.
    tight = table[48.0]
    assert tight["concurrent"] > tight["sequential"] * 1.1
    assert tight["faults"] > 0
