"""Figure 6: energy impact of fidelity for video playing.

Four QuickTime/Cinepak clips (127-226 s), six configurations per clip:
baseline, hardware-only power management, Premiere-B, Premiere-C,
reduced window, and combined.  Five trials per cell with 90% CIs.
"""

from conftest import run_once
from tables_util import format_energy_table, savings, sweep_with_trials

from repro.analysis import render_table
from repro.experiments import video_energy_table
from repro.workloads import VIDEO_CLIPS

CONFIGS = (
    "baseline", "hw-only", "premiere-b", "premiere-c",
    "reduced-window", "combined",
)
CLIPS = [clip.name for clip in VIDEO_CLIPS]


def test_fig06_video(benchmark, report):
    stats = run_once(benchmark, sweep_with_trials, video_energy_table, 5)

    report(render_table(
        ["Config (J)"] + CLIPS,
        format_energy_table(stats, CONFIGS, CLIPS),
        title="Figure 6 — video energy by fidelity (mean ± 90% CI, 5 trials)",
    ))
    hw = savings(stats, "hw-only", "baseline")
    pc = savings(stats, "premiere-c", "hw-only")
    rw = savings(stats, "reduced-window", "hw-only")
    cb = savings(stats, "combined", "hw-only")
    cb_base = savings(stats, "combined", "baseline")
    report(f"hw-only vs baseline:        {min(hw.values()):.1%}-{max(hw.values()):.1%}  (paper 9-10%)")
    report(f"premiere-c vs hw-only:      {min(pc.values()):.1%}-{max(pc.values()):.1%}  (paper 16-17%)")
    report(f"reduced-window vs hw-only:  {min(rw.values()):.1%}-{max(rw.values()):.1%}  (paper 19-20%)")
    report(f"combined vs hw-only:        {min(cb.values()):.1%}-{max(cb.values()):.1%}  (paper 28-30%)")
    report(f"combined vs baseline:       {min(cb_base.values()):.1%}-{max(cb_base.values()):.1%}  (paper ~35%)")

    # Shape assertions: orderings hold for every clip.
    for clip in CLIPS:
        assert stats["hw-only"][clip].mean < stats["baseline"][clip].mean
        assert stats["premiere-c"][clip].mean < stats["premiere-b"][clip].mean
        assert stats["reduced-window"][clip].mean < stats["premiere-c"][clip].mean
        assert stats["combined"][clip].mean == min(
            stats[c][clip].mean for c in CONFIGS
        )
    assert 0.30 <= min(cb_base.values()) and max(cb_base.values()) <= 0.42
