"""Shared helpers for the per-figure energy-table benchmarks."""

from repro.analysis import summarize
from repro.experiments import trial_costs

__all__ = ["sweep_with_trials", "format_energy_table", "savings"]


def sweep_with_trials(table_fn, trials=5, **kwargs):
    """Run a ``{config: {object: J}}`` sweep across jittered trials.

    Returns ``{config: {object: TrialStats}}`` — the paper's mean of
    five trials with 90 % confidence intervals.
    """
    per_trial = [
        table_fn(costs=trial_costs(trial), **kwargs) for trial in range(trials)
    ]
    stats = {}
    for config in per_trial[0]:
        stats[config] = {}
        for obj in per_trial[0][config]:
            stats[config][obj] = summarize(
                [table[config][obj] for table in per_trial]
            )
    return stats


def format_energy_table(stats, configs, objects):
    """Rows of 'mean ± ci' strings, one row per config."""
    rows = []
    for config in configs:
        row = [config]
        for obj in objects:
            row.append(f"{stats[config][obj]:.1f}")
        rows.append(row)
    return rows


def savings(stats, config, reference):
    """Per-object fractional savings of config vs reference (means)."""
    return {
        obj: 1.0 - stats[config][obj].mean / stats[reference][obj].mean
        for obj in stats[reference]
    }
