"""Figure 22: longer-duration goal-directed adaptation.

Five trials of a bursty stochastic workload (each application
independently active/idle per minute, 10% switching probability), with
the duration goal extended by a half hour partway through — the user
revising their estimate.  The supply is sized relative to the goal the
same way the paper's 90 kJ relates to its 3:15 total (feasible at low
fidelity with modest headroom).

Scaled to one-fifth of the paper's wall-clock duration to keep the
benchmark runtime reasonable; the control dynamics are unchanged.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import run_bursty_experiment

GOAL_S = 1980.0           # paper: 9900 s (2:45 h)
EXTEND_AT_S = 720.0       # paper: after the first hour
EXTEND_BY_S = 360.0       # paper: +1800 s (30 min)
SEEDS = (1, 2, 3, 4, 5)


def sweep_trials():
    return {
        seed: run_bursty_experiment(
            seed=seed,
            goal_seconds=GOAL_S,
            extension=(EXTEND_AT_S, EXTEND_BY_S),
        )
        for seed in SEEDS
    }


def test_fig22_longduration(benchmark, report):
    results = run_once(benchmark, sweep_trials)

    rows = []
    for seed, result in results.items():
        rows.append([
            str(seed),
            "Yes" if result.goal_met else "No",
            f"{result.residual_energy:.0f}",
            ", ".join(
                f"{app}={count}" for app, count in result.adaptations.items()
            ),
        ])
    report(render_table(
        ["Trial", "Goal met", "Residual (J)", "Adaptations"],
        rows,
        title=(
            f"Figure 22 — bursty workload, goal {GOAL_S:.0f}s extended by "
            f"{EXTEND_BY_S:.0f}s at t={EXTEND_AT_S:.0f}s "
            "(paper: goal met in 5/5 trials)"
        ),
    ))

    met = [r for r in results.values() if r.goal_met]
    assert len(met) == len(SEEDS), "a bursty trial missed its goal"
    for result in results.values():
        assert result.goal_seconds == GOAL_S + EXTEND_BY_S
