"""Campaign-service throughput vs the one-shot runner.

The service's value is amortization: the pool is warm, so a stream of
small campaigns skips the pool build/teardown every `FleetRunner.run()`
pays, and a shared cache means a second tenant's identical campaign is
nearly free.  This benchmark times three shapes:

* N small campaigns through one warm service, sequentially;
* the same N campaigns as N separate one-shot FleetRunner pools;
* a second tenant resubmitting the same campaigns (cache-served).

Correctness bar: service values are bit-identical to one-shot values.
"""

import time

from conftest import run_once

from repro.fleet import CampaignSpec, FleetRunner, Task
from repro.service import CampaignService

JOBS = 2
CAMPAIGNS = 4
TASKS = 6


def _campaign(i):
    return CampaignSpec(
        name=f"svc-bench-{i}",
        tasks=tuple(
            Task(id=f"t{j}", fn="repro.fleet.library:seeded_value",
                 params={"seed": i * 100 + j, "scale": 2.0})
            for j in range(TASKS)
        ),
    )


def _service_stream(service, specs):
    start = time.perf_counter()
    job_ids = [service.submit(spec) for spec in specs]
    results = {}
    for job_id in job_ids:
        service.wait(job_id, timeout=120)
        results[job_id] = service.result(job_id)
    return results, time.perf_counter() - start


def test_service_throughput(benchmark, report, tmp_path):
    specs = [_campaign(i) for i in range(CAMPAIGNS)]

    # One-shot: a fresh pool per campaign (the pre-service workflow).
    start = time.perf_counter()
    oneshot = [FleetRunner(jobs=JOBS).run(spec) for spec in specs]
    oneshot_s = time.perf_counter() - start

    service = CampaignService(workers=JOBS, cache=tmp_path / "cache",
                              poll_s=0.02)
    with service:
        warm, warm_s = run_once(benchmark, _service_stream, service, specs)
        cached, cached_s = _service_stream(service, specs)

    report(f"{CAMPAIGNS} campaigns x {TASKS} tasks (workers={JOBS}):")
    report(f"  one-shot pools {oneshot_s:6.2f}s  "
           f"(pool build/teardown per campaign)")
    report(f"  warm service   {warm_s:6.2f}s  "
           f"(speedup {oneshot_s / warm_s:4.2f}x)")
    report(f"  cache-served   {cached_s:6.2f}s  "
           f"(speedup {oneshot_s / cached_s:4.2f}x)")

    # Correctness bars (hold on any machine).
    for spec, direct in zip(specs, oneshot):
        job = next(r for r in warm.values()
                   if r["campaign"] == spec.name)
        assert job["values"] == direct.values
    for result in cached.values():
        assert result["telemetry"]["cached"] == TASKS
        assert result["telemetry"]["succeeded"] == 0
    # The resubmission must be served from cache, far faster than
    # executing (seeded_value is cheap, so compare to one-shot instead
    # of asserting a wall-clock ratio that noise could flip).
    assert sum(r["telemetry"]["succeeded"] for r in warm.values()) \
        == CAMPAIGNS * TASKS
