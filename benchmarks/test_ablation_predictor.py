"""Ablation: the demand-prediction strategy (Section 5.1.2).

The paper smooths power with a goal-relative half-life.  Compare that
against two degenerate predictors expressible in the same framework:
an (almost) last-sample predictor (tiny half-life — maximum agility,
no stability) and a near-global-mean predictor (huge half-life —
maximum stability, no agility).  The paper's middle ground should
adapt less than the last-sample variant while still meeting the goal.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)

INITIAL_ENERGY = 8_000.0

VARIANTS = {
    "last-sample (half-life 0.1%)": 0.001,
    "paper (half-life 10%)": 0.10,
    "global-mean (half-life 500%)": 5.0,
}


def sweep():
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY)
    goal = derive_goals(t_hi, t_lo, count=3)[1]
    return {
        label: run_goal_experiment(
            goal, initial_energy=INITIAL_ENERGY, halflife_fraction=fraction
        )
        for label, fraction in VARIANTS.items()
    }


def test_ablation_predictor(benchmark, report):
    results = run_once(benchmark, sweep)

    rows = [
        [
            label,
            "Yes" if result.goal_met else "No",
            f"{result.residual_energy:.0f}",
            str(result.total_adaptations),
        ]
        for label, result in results.items()
    ]
    report(render_table(
        ["Predictor", "Goal met", "Residue (J)", "Adaptations"],
        rows,
        title="Ablation — demand-prediction smoothing strategy",
    ))

    paper = results["paper (half-life 10%)"]
    last = results["last-sample (half-life 0.1%)"]
    assert paper.goal_met
    # The last-sample predictor chases transients: more adaptations.
    assert last.total_adaptations > paper.total_adaptations
