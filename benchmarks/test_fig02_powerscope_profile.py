"""Figure 2: an example PowerScope energy profile.

Profiles a segment of Odyssey video playback at ~600 Hz and prints the
two tables of the paper's Figure 2: per-process summary and the
per-procedure detail for one process.
"""

from conftest import run_once

from repro.experiments import build_rig
from repro.powerscope import profile_run, render_profile
from repro.workloads.videos import VideoClip


def profile_video_playback():
    rig = build_rig(pm_enabled=False)
    clip = VideoClip("profiled-clip", 20.0, 12.0, 16_250)
    player = rig.apps["video"]
    rig.sim.spawn(player.play(clip), name="xanim")
    profile = profile_run(rig.machine, until=clip.duration_s, rate_hz=600.0)
    return rig, profile


def test_fig02_powerscope_profile(benchmark, report):
    rig, profile = run_once(benchmark, profile_video_playback)

    report("Figure 2 — PowerScope energy profile of video playback")
    report(render_profile(profile, detail_process="xanim"))

    # Profile integrity: ~600 samples/s, energy matches ground truth.
    assert profile.sample_count == int(20.0 * 600)
    assert abs(profile.total_energy - rig.machine.energy_total) < (
        0.02 * rig.machine.energy_total
    )
    # The paper's headline processes all appear.
    for process in ("Idle", "xanim", "X", "odyssey", "Interrupts-WaveLAN"):
        assert profile.energy_of(process) > 0, process
