"""Ablation: the 15-second cap on fidelity improvements (Section 5.1.3).

Odyssey caps upgrades at one per 15 s as a guard against excessive
adaptation on energy transients.  Removing the cap should increase the
number of adaptations (upgrades fire on every favorable decision, then
bounce back down); the goal should still be met.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)

INITIAL_ENERGY = 8_000.0

VARIANTS = {
    "paper (15 s cap)": 15.0,
    "5 s cap": 5.0,
    "no cap": 0.0,
}


def sweep():
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY)
    goal = derive_goals(t_hi, t_lo, count=3)[1]
    return {
        label: run_goal_experiment(
            goal, initial_energy=INITIAL_ENERGY, upgrade_min_interval=interval
        )
        for label, interval in VARIANTS.items()
    }


def test_ablation_rate_cap(benchmark, report):
    results = run_once(benchmark, sweep)

    rows = [
        [
            label,
            "Yes" if result.goal_met else "No",
            f"{result.residual_energy:.0f}",
            str(result.total_adaptations),
        ]
        for label, result in results.items()
    ]
    report(render_table(
        ["Variant", "Goal met", "Residue (J)", "Adaptations"],
        rows,
        title="Ablation — fidelity-improvement rate cap",
    ))

    assert results["paper (15 s cap)"].goal_met
    # Removing the cap never *reduces* adaptation churn.
    assert (
        results["no cap"].total_adaptations
        >= results["paper (15 s cap)"].total_adaptations
    )
