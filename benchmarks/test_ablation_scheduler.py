"""Ablation: CPU scheduling model under concurrency.

The default machine serializes whole compute bursts FIFO; the quantum
scheduler time-slices them round-robin like the testbed's Linux 2.2
kernel.  Rerunning a fixed concurrent workload (a 45-second video plus
two composite iterations) under both models shows the scheduling
trade-off: total energy is nearly identical (the same work executes
either way) while the video's worst-case frame lateness shrinks under
time-slicing — the composite's multi-second recognition bursts no
longer stall the decoder wholesale.
"""

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.apps import CompositeApplication
from repro.experiments import build_rig
from repro.workloads.videos import VideoClip


def run_concurrent(cpu_quantum):
    rig = build_rig(pm_enabled=True, cpu_quantum=cpu_quantum)
    composite = CompositeApplication(
        rig.apps["speech"], rig.apps["web"], rig.apps["map"]
    )
    player = rig.apps["video"]
    clip = VideoClip("sched-clip", 45.0, 12.0, 16_250)

    video = rig.sim.spawn(player.play(clip), name="video")
    main = rig.sim.spawn(composite.run(iterations=2), name="composite")
    composite_done = {}

    def waiter():
        yield main
        composite_done["t"] = rig.sim.now
        yield video

    done = rig.sim.spawn(waiter())
    energy = rig.run_until_complete(done)
    late_fraction = (
        player.frames_late / player.frames_played if player.frames_played else 0.0
    )
    video_span = rig.sim.now  # video finishes last or at clip length
    return {
        "energy": energy,
        "late_fraction": late_fraction,
        "video_span": video_span,
        "composite_done": composite_done["t"],
    }


VARIANTS = {
    "FIFO whole-burst": None,
    "round-robin 100 ms": 0.1,
    "round-robin 50 ms": 0.05,
}


def sweep():
    return {label: run_concurrent(q) for label, q in VARIANTS.items()}


def test_ablation_scheduler(benchmark, report):
    table = run_once(benchmark, sweep)

    rows = [
        [
            label,
            f"{m['energy']:.0f}",
            f"{m['late_fraction']:.1%}",
            f"{m['video_span']:.1f}",
            f"{m['composite_done']:.1f}",
        ]
        for label, m in table.items()
    ]
    report(render_table(
        ["Scheduler", "Energy (J)", "Frames late", "Video span (s)",
         "Composite done (s)"],
        rows,
        title="Ablation — CPU scheduling, fixed concurrent workload "
              "(45 s video + 2 composite iterations)",
    ))

    fifo = table["FIFO whole-burst"]
    rr = table["round-robin 50 ms"]
    # The same work executes either way: energy within a few percent
    # (differences come only from how long powered components idle).
    assert rr["energy"] == pytest.approx(fifo["energy"], rel=0.08)
    # Time-slicing spreads video stalls instead of wholesale blocking:
    # the video finishes no later than under FIFO.
    assert rr["video_span"] <= fifo["video_span"] * 1.05
    # The flip side: the composite's bursts finish later under RR.
    assert rr["composite_done"] >= fifo["composite_done"] * 0.95
