"""Shared benchmark fixtures.

Each benchmark regenerates one table/figure of the paper and prints the
rows the figure reports.  Output goes straight to the real stdout so it
is visible even under pytest's capture.
"""

import sys

import pytest


@pytest.fixture
def report(capfd):
    """Print paper-style rows, bypassing pytest output capture."""

    def _report(text):
        with capfd.disabled():
            print(text, file=sys.__stdout__, flush=True)

    _report("")  # newline after pytest's progress dots
    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment exactly once (they are deterministic)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
