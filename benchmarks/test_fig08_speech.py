"""Figure 8: energy impact of fidelity for speech recognition.

Four utterances (1-7 s), seven configurations: baseline, hardware-only
power management, reduced model, remote, hybrid, remote-reduced and
hybrid-reduced.
"""

from conftest import run_once
from tables_util import format_energy_table, savings, sweep_with_trials

from repro.analysis import render_table
from repro.experiments import speech_energy_table
from repro.workloads import UTTERANCES

CONFIGS = (
    "baseline", "hw-only", "reduced", "remote", "hybrid",
    "remote-reduced", "hybrid-reduced",
)
UTTS = [utt.name for utt in UTTERANCES]


def test_fig08_speech(benchmark, report):
    stats = run_once(benchmark, sweep_with_trials, speech_energy_table, 5)

    report(render_table(
        ["Config (J)"] + UTTS,
        format_energy_table(stats, CONFIGS, UTTS),
        title="Figure 8 — speech energy by strategy (mean ± 90% CI, 5 trials)",
    ))
    bands = {
        "hw-only vs baseline (paper 33-34%)": savings(stats, "hw-only", "baseline"),
        "reduced vs hw-only (paper 25-46%)": savings(stats, "reduced", "hw-only"),
        "remote vs hw-only (paper 33-44%)": savings(stats, "remote", "hw-only"),
        "hybrid vs hw-only (paper 47-55%)": savings(stats, "hybrid", "hw-only"),
        "remote-reduced vs hw-only (paper 42-65%)": savings(
            stats, "remote-reduced", "hw-only"
        ),
        "hybrid-reduced vs hw-only (paper 53-70%)": savings(
            stats, "hybrid-reduced", "hw-only"
        ),
        "hybrid-reduced vs baseline (paper 69-80%)": savings(
            stats, "hybrid-reduced", "baseline"
        ),
    }
    for label, values in bands.items():
        report(f"{label:44} measured {min(values.values()):.1%}-{max(values.values()):.1%}")

    for utt in UTTS:
        assert stats["hw-only"][utt].mean < stats["baseline"][utt].mean
        assert stats["reduced"][utt].mean < stats["hw-only"][utt].mean
        assert stats["hybrid"][utt].mean < stats["remote"][utt].mean
        assert stats["hybrid-reduced"][utt].mean < stats["hybrid"][utt].mean
        assert stats["remote-reduced"][utt].mean < stats["remote"][utt].mean
    combined = savings(stats, "hybrid-reduced", "baseline")
    assert min(combined.values()) >= 0.6
