"""Figure 13: energy impact of fidelity for Web browsing.

Four GIF images (110 B to 175 kB) with five seconds of think time,
six configurations: baseline, hardware-only PM, and JPEG 75/50/25/5
distillation.
"""

from conftest import run_once
from tables_util import format_energy_table, savings, sweep_with_trials

from repro.analysis import render_table
from repro.experiments import web_energy_table
from repro.workloads import IMAGES

CONFIGS = ("baseline", "hw-only", "jpeg-75", "jpeg-50", "jpeg-25", "jpeg-5")
PICS = [image.name for image in IMAGES]


def test_fig13_web(benchmark, report):
    stats = run_once(benchmark, sweep_with_trials, web_energy_table, 5)

    report(render_table(
        ["Config (J)"] + PICS,
        format_energy_table(stats, CONFIGS, PICS),
        title="Figure 13 — Web energy by JPEG quality, 5 s think time",
    ))
    hw = savings(stats, "hw-only", "baseline")
    lowest = savings(stats, "jpeg-5", "hw-only")
    lowest_base = savings(stats, "jpeg-5", "baseline")
    report(f"hw-only vs baseline:  {min(hw.values()):.1%}-{max(hw.values()):.1%}  (paper 22-26%)")
    report(f"jpeg-5 vs hw-only:    {min(lowest.values()):.1%}-{max(lowest.values()):.1%}  (paper 4-14%)")
    report(f"jpeg-5 vs baseline:   {min(lowest_base.values()):.1%}-{max(lowest_base.values()):.1%}  (paper 29-34%)")

    for pic in PICS:
        assert stats["hw-only"][pic].mean < stats["baseline"][pic].mean
        assert stats["jpeg-5"][pic].mean <= stats["jpeg-75"][pic].mean
    # The paper's headline: fidelity reduction is disappointing here.
    assert max(lowest.values()) < 0.20
    # Most of the savings come from power management, not fidelity.
    assert min(hw.values()) > max(lowest.values())
