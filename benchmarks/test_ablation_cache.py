"""Ablation: energy-aware client caching.

Odyssey is a VFS, so wardens may cache fetched data on the local disk.
This ablation measures the crossover the disk-management literature
(cited by the paper) predicts: caching repeated large fetches saves
energy despite disk spin-ups, while small objects are cheaper to
re-fetch over the network than to spin the disk for.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.core import DiskCache
from repro.experiments import build_rig
from repro.workloads import MAPS, IMAGES


def measure(objects, fetch_fn_name, use_cache, accesses=4):
    rig = build_rig(pm_enabled=True)
    warden = rig.wardens[fetch_fn_name]
    cache = (
        DiskCache(rig.machine, 50_000_000, power_manager=rig.power_manager)
        if use_cache
        else None
    )

    def fetch(obj):
        if fetch_fn_name == "map":
            return warden.fetch_map(obj, "full")
        return warden.fetch_image(obj, "full")

    def session():
        for _ in range(accesses):
            for obj in objects:
                if cache is not None:
                    yield from cache.fetch_through(
                        obj.name, lambda o=obj: fetch(o)
                    )
                else:
                    yield from fetch(obj)
                yield rig.sim.timeout(5.0)

    proc = rig.sim.spawn(session())
    return rig.run_until_complete(proc)


def sweep():
    return {
        "maps (0.9-1.9 MB)": {
            "uncached": measure(MAPS, "map", use_cache=False),
            "cached": measure(MAPS, "map", use_cache=True),
        },
        "web images (<=175 kB)": {
            "uncached": measure(IMAGES, "web", use_cache=False),
            "cached": measure(IMAGES, "web", use_cache=True),
        },
    }


def test_ablation_cache(benchmark, report):
    table = run_once(benchmark, sweep)

    rows = []
    for workload, pair in table.items():
        saving = 1 - pair["cached"] / pair["uncached"]
        rows.append([
            workload,
            f"{pair['uncached']:.0f}",
            f"{pair['cached']:.0f}",
            f"{saving:+.1%}",
        ])
    report(render_table(
        ["Workload", "Uncached (J)", "Cached (J)", "Cache saving"],
        rows,
        title="Ablation — client disk cache (4 repeated accesses, "
              "5 s think time)",
    ))

    # Large map fetches: the cache wins.
    maps = table["maps (0.9-1.9 MB)"]
    assert maps["cached"] < maps["uncached"]
    # Small images: the benefit shrinks dramatically (or inverts) —
    # spinning the disk costs nearly as much as the cheap re-fetch.
    maps_saving = 1 - maps["cached"] / maps["uncached"]
    images = table["web images (<=175 kB)"]
    images_saving = 1 - images["cached"] / images["uncached"]
    assert images_saving < maps_saving
