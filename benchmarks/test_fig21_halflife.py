"""Figure 21: sensitivity to the smoothing half-life.

The goal experiment on a 13 kJ supply across half-life values 1%, 5%,
10% and 15% of remaining time, five trials each.  The paper finds 1%
clearly too unstable (largest residue, most adaptations) and increasing
half-life increasingly stable, motivating the 10% default.
"""

from conftest import run_once

from repro.analysis import render_table, summarize
from repro.experiments import halflife_sweep

HALFLIVES = (0.01, 0.05, 0.10, 0.15)


def test_fig21_halflife(benchmark, report):
    results = run_once(
        benchmark, halflife_sweep, HALFLIVES
    )

    rows = []
    for halflife in HALFLIVES:
        trials = results[halflife]
        met = sum(r.goal_met for r in trials) / len(trials)
        residue = summarize([r.residual_energy for r in trials])
        adaptations = summarize([float(r.total_adaptations) for r in trials])
        rows.append([
            f"{halflife:.2f}", f"{met:.0%}", f"{residue:.0f}",
            f"{adaptations:.1f}",
        ])
    report(render_table(
        ["Half-life", "Goal met", "Residue (J)", "Adaptations"],
        rows,
        title="Figure 21 — sensitivity to smoothing half-life "
              "(paper: 1% unstable; stability grows with half-life)",
    ))

    def mean_adaptations(halflife):
        trials = results[halflife]
        return sum(r.total_adaptations for r in trials) / len(trials)

    # 1% half-life adapts far more than the 10% default.
    assert mean_adaptations(0.01) > mean_adaptations(0.10)
    # The default half-life meets the goal in every trial.
    assert all(r.goal_met for r in results[0.10])
