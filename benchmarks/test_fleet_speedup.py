"""Fleet speedup: serial vs parallel wall-time for a ~20-task campaign.

Two campaigns are timed so future PRs can track the speedup trajectory:

* a *simulation* campaign (20 video-playback measurements, CPU-bound) —
  on a multi-core box the pool wins; on a single core it records the
  pool's overhead honestly;
* a *latency* campaign (20 sleep tasks, I/O-shaped) — overlap wins on
  any core count, which pins down that the runner actually overlaps
  work rather than serializing it.

Also asserts the acceptance bar: the parallel simulation campaign's
aggregates are bit-identical to the serial ones, and a cache-warm
re-run executes zero tasks.
"""

import os
import time

from conftest import run_once

from repro.fleet import CampaignSpec, FleetRunner, Task

JOBS = 4
SLEEP_S = 0.3


def _video_campaign():
    # 5 configs x 4 clips = 20 real simulation tasks (~0.2 s each).
    from repro.fleet.campaigns import energy_table_campaign

    return energy_table_campaign(
        "video",
        configs=("baseline", "hw-only", "premiere-c", "reduced-window",
                 "combined"),
    )


def _sleep_campaign():
    tasks = [
        Task(id=f"sleep-{i}", fn="repro.fleet.library:sleep_for",
             params={"seconds": SLEEP_S, "value": i})
        for i in range(20)
    ]
    return CampaignSpec(name="sleep-20", tasks=tasks)


def _timed_run(runner, spec):
    start = time.perf_counter()
    result = runner.run(spec)
    return result, time.perf_counter() - start


def test_fleet_speedup(benchmark, report, tmp_path):
    spec = _video_campaign()
    assert len(spec) == 20

    serial, serial_s = _timed_run(FleetRunner(jobs=1), spec)
    cache_dir = tmp_path / "cache"
    parallel, parallel_s = run_once(
        benchmark, _timed_run, FleetRunner(jobs=JOBS, cache=cache_dir), spec
    )
    warm, warm_s = _timed_run(FleetRunner(jobs=JOBS, cache=cache_dir), spec)

    sleep_spec = _sleep_campaign()
    _, sleep_serial_s = _timed_run(FleetRunner(jobs=1), sleep_spec)
    _, sleep_parallel_s = _timed_run(FleetRunner(jobs=JOBS), sleep_spec)

    cores = os.cpu_count() or 1
    report(f"20-task video campaign ({cores} cores, jobs={JOBS}):")
    report(f"  serial    {serial_s:6.2f}s")
    report(f"  parallel  {parallel_s:6.2f}s  "
           f"(speedup {serial_s / parallel_s:4.2f}x)")
    report(f"  cache-warm{warm_s:6.2f}s  "
           f"(executed {warm.telemetry.executed} tasks)")
    report(f"20-task sleep campaign ({SLEEP_S:.1f}s each):")
    report(f"  serial    {sleep_serial_s:6.2f}s")
    report(f"  parallel  {sleep_parallel_s:6.2f}s  "
           f"(speedup {sleep_serial_s / sleep_parallel_s:4.2f}x)")

    # Correctness bars (hold on any machine).
    assert serial.values == parallel.values == warm.values
    assert warm.telemetry.executed == 0
    assert warm.telemetry.cached == 20
    # Overlap bar: 20 x 0.3 s of sleep on 4 workers must beat serial by
    # a wide margin regardless of core count.
    assert sleep_parallel_s < sleep_serial_s / 2
    # CPU-bound speedup only materializes with real cores to spread over.
    if cores >= 4:
        assert parallel_s < serial_s
