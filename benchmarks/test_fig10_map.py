"""Figure 10: energy impact of fidelity for map viewing.

Four U.S. city maps with five seconds of think time, seven
configurations: baseline, hardware-only PM, two filters, cropping, and
the two crop+filter combinations.
"""

from conftest import run_once
from tables_util import format_energy_table, savings, sweep_with_trials

from repro.analysis import render_table
from repro.experiments import map_energy_table
from repro.workloads import MAPS

CONFIGS = (
    "baseline", "hw-only", "minor-filter", "secondary-filter",
    "cropped", "crop-minor", "crop-secondary",
)
CITIES = [city.name for city in MAPS]


def test_fig10_map(benchmark, report):
    stats = run_once(benchmark, sweep_with_trials, map_energy_table, 5)

    report(render_table(
        ["Config (J)"] + CITIES,
        format_energy_table(stats, CONFIGS, CITIES),
        title="Figure 10 — map energy by fidelity, 5 s think time",
    ))
    bands = {
        "hw-only vs baseline (paper 9-19%)": savings(stats, "hw-only", "baseline"),
        "minor filter vs hw-only (paper 6-51%)": savings(
            stats, "minor-filter", "hw-only"
        ),
        "secondary filter vs hw-only (paper 23-55%)": savings(
            stats, "secondary-filter", "hw-only"
        ),
        "cropped vs hw-only (paper 14-49%)": savings(stats, "cropped", "hw-only"),
        "crop+secondary vs hw-only (paper 36-66%)": savings(
            stats, "crop-secondary", "hw-only"
        ),
        "lowest vs baseline (paper 46-70%)": savings(
            stats, "crop-secondary", "baseline"
        ),
    }
    for label, values in bands.items():
        report(f"{label:46} measured {min(values.values()):.1%}-{max(values.values()):.1%}")

    for city in CITIES:
        assert stats["hw-only"][city].mean < stats["baseline"][city].mean
        assert (
            stats["secondary-filter"][city].mean
            < stats["minor-filter"][city].mean
        )
        assert stats["crop-minor"][city].mean < stats["cropped"][city].mean
        assert stats["crop-secondary"][city].mean == min(
            stats[c][city].mean for c in CONFIGS
        )
    # Filter effectiveness varies widely across cities (dense vs sparse).
    minor = savings(stats, "minor-filter", "hw-only")
    assert max(minor.values()) - min(minor.values()) > 0.15
