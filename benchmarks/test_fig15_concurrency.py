"""Figure 15: effect of concurrent applications.

The composite application (Section 3.7) runs in isolation and
concurrently with the background video player, at baseline,
hardware-only PM and lowest fidelity.  Five trials per cell.
"""

from conftest import run_once

from repro.analysis import render_table, summarize
from repro.experiments import concurrency_table, trial_costs

CONFIGS = ("baseline", "hw-only", "lowest-fidelity")


def sweep(trials=5):
    per_trial = [
        concurrency_table(iterations=6, costs=trial_costs(t))
        for t in range(trials)
    ]
    stats = {}
    for config in CONFIGS:
        stats[config] = {
            mode: summarize([t[config][mode] for t in per_trial])
            for mode in ("alone", "concurrent")
        }
    return stats


def test_fig15_concurrency(benchmark, report):
    stats = run_once(benchmark, sweep)

    rows = []
    for config in CONFIGS:
        alone = stats[config]["alone"]
        conc = stats[config]["concurrent"]
        extra = conc.mean / alone.mean - 1
        rows.append([config, f"{alone:.0f}", f"{conc:.0f}", f"+{extra:.0%}"])
    report(render_table(
        ["Config", "Alone (J)", "Concurrent (J)", "Video adds"],
        rows,
        title="Figure 15 — composite application with/without video "
              "(paper adds: baseline +53%, hw-only +64%, lowest +18%)",
    ))
    iso_saving = 1 - (
        stats["lowest-fidelity"]["alone"].mean / stats["hw-only"]["alone"].mean
    )
    conc_saving = 1 - (
        stats["lowest-fidelity"]["concurrent"].mean
        / stats["hw-only"]["concurrent"].mean
    )
    report(f"fidelity savings in isolation:   {iso_saving:.1%}")
    report(f"fidelity savings under concurrency: {conc_saving:.1%}")

    # Shape: concurrency adds energy but much less than doubling it.
    for config in CONFIGS:
        extra = (
            stats[config]["concurrent"].mean / stats[config]["alone"].mean - 1
        )
        assert 0.0 < extra < 0.75, config
    # Orderings hold under concurrency.
    assert (
        stats["lowest-fidelity"]["concurrent"].mean
        < stats["hw-only"]["concurrent"].mean
        < stats["baseline"]["concurrent"].mean
    )
    # Fidelity reduction remains strongly effective when concurrent.
    assert conc_saving > 0.25
