"""Figure 11: effect of user think time for map viewing.

Energy for the San Jose map at think times 0/5/10/20 s for three cases
(baseline, hardware-only PM, lowest fidelity), with the linear model
``E_t = E_0 + t * P_B`` fitted to each — the paper reports the model
fits well, with diverging baseline/PM lines and parallel PM/lowest
lines.
"""

from conftest import run_once

from repro.analysis import fit_linear, render_table
from repro.experiments import measure_map
from repro.workloads import THINK_SWEEP_S, map_by_name

CASES = ("baseline", "hw-only", "crop-secondary")


def sweep_think_times():
    city = map_by_name("san-jose")
    table = {}
    for config in CASES:
        energies = [
            measure_map(city, config, think_time_s=t) for t in THINK_SWEEP_S
        ]
        table[config] = (energies, fit_linear(THINK_SWEEP_S, energies))
    return table


def test_fig11_map_thinktime(benchmark, report):
    table = run_once(benchmark, sweep_think_times)

    rows = []
    for config, (energies, fit) in table.items():
        rows.append(
            [config]
            + [f"{e:.1f}" for e in energies]
            + [f"{fit.intercept:.1f}", f"{fit.slope:.2f}", f"{fit.r_squared:.5f}"]
        )
    report(render_table(
        ["Case (J)"] + [f"t={t:.0f}s" for t in THINK_SWEEP_S]
        + ["E0 (J)", "PB (W)", "R^2"],
        rows,
        title="Figure 11 — map energy vs think time (San Jose)",
    ))

    fits = {config: fit for config, (_e, fit) in table.items()}
    # Linear model is a good fit for all three cases.
    for config, fit in fits.items():
        assert fit.r_squared > 0.999, config
    # Diverging lines: baseline slope exceeds the PM slope.
    assert fits["baseline"].slope > fits["hw-only"].slope
    # Parallel lines: fidelity reduction is think-time independent.
    assert abs(fits["hw-only"].slope - fits["crop-secondary"].slope) < 0.1
    # The PM think-time slope is the client's background power.
    assert 7.0 < fits["hw-only"].slope < 9.5
