"""Figure 20: summary of goal-directed adaptation.

Four battery-duration goals spanning the workload's fidelity bounds
(the paper's 1200/1320/1440/1560 s on a 12 kJ supply), five trials
each.  Reports goal-met percentage, residual energy, and per-app
adaptation counts — every goal should be met with a small residue.
"""

from conftest import run_once

from repro.analysis import render_table, summarize
from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
    trial_costs,
)

INITIAL_ENERGY = 12_000.0
TRIALS = 5


def sweep_goals():
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY)
    goals = derive_goals(t_hi, t_lo, count=4)
    table = {}
    for goal in goals:
        table[goal] = [
            run_goal_experiment(
                goal, initial_energy=INITIAL_ENERGY, costs=trial_costs(trial)
            )
            for trial in range(TRIALS)
        ]
    return (t_hi, t_lo), table


def test_fig20_goal_summary(benchmark, report):
    (t_hi, t_lo), table = run_once(benchmark, sweep_goals)

    rows = []
    for goal, results in table.items():
        met = sum(r.goal_met for r in results) / len(results)
        residue = summarize([r.residual_energy for r in results])
        adaptations = summarize([r.total_adaptations for r in results])
        rows.append([
            f"{goal:.0f}", f"{met:.0%}", f"{residue:.0f}", f"{adaptations:.1f}",
        ])
    report(render_table(
        ["Goal (s)", "Goal met", "Residue (J)", "Adaptations"],
        rows,
        title=(
            f"Figure 20 — goal-directed adaptation on {INITIAL_ENERGY:.0f} J "
            f"(bounds {t_hi:.0f}-{t_lo:.0f}s; paper goals 1200-1560s met 100%)"
        ),
    ))
    per_app = {}
    for results in table.values():
        for result in results:
            for app, count in result.adaptations.items():
                per_app.setdefault(app, []).append(count)
    report("adaptations by app (mean): " + ", ".join(
        f"{app}={sum(v) / len(v):.1f}" for app, v in per_app.items()
    ))

    for goal, results in table.items():
        met = sum(r.goal_met for r in results) / len(results)
        assert met == 1.0, f"goal {goal:.0f}s met only {met:.0%}"
        for result in results:
            # Residue small: Odyssey is not over-conservative (paper:
            # largest residue 1.2% of the initial energy).
            assert result.residual_energy < 0.08 * INITIAL_ENERGY
    # Battery-life extension achieved across the goal range.
    goals = sorted(table)
    assert goals[-1] / goals[0] > 1.08
