"""Ablation: measurement source for goal-directed adaptation.

The paper's prototype used external multimeter hardware sampling every
100 ms and anticipated deployment on SmartBattery-class on-board gauges
(Section 5.1.1).  This ablation quantifies what the coarser source
costs: the on-line PowerScope monitor vs gauges of decreasing quality.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)
from repro.powerscope import SmartBatteryGauge

INITIAL_ENERGY = 8_000.0

VARIANTS = {
    "multimeter (100 ms, exact)": None,
    "gauge 1 s / 0.25 W": dict(period=1.0, resolution_w=0.25),
    "gauge 2 s / 0.5 W": dict(period=2.0, resolution_w=0.5),
    "gauge 5 s / 1.0 W": dict(period=5.0, resolution_w=1.0),
}


def sweep():
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY)
    goals = derive_goals(t_hi, t_lo, count=3)
    table = {}
    for label, gauge_kwargs in VARIANTS.items():
        factory = None
        if gauge_kwargs is not None:
            factory = lambda machine, kw=gauge_kwargs: SmartBatteryGauge(
                machine, **kw
            )
        table[label] = [
            run_goal_experiment(
                goal, initial_energy=INITIAL_ENERGY, monitor_factory=factory
            )
            for goal in goals
        ]
    return goals, table


def test_ablation_gauge(benchmark, report):
    goals, table = run_once(benchmark, sweep)

    rows = []
    for label, results in table.items():
        met = sum(r.goal_met for r in results)
        worst = min(r.survived_seconds / r.goal_seconds for r in results)
        adaptations = sum(r.total_adaptations for r in results) / len(results)
        rows.append([
            label, f"{met}/{len(results)}", f"{worst:.3f}", f"{adaptations:.0f}",
        ])
    report(render_table(
        ["Measurement source", "Goals met", "Worst survival", "Adaptations"],
        rows,
        title="Ablation — power measurement source "
              "(paper §5.1.1: deployment would use SmartBattery gauges)",
    ))

    exact = table["multimeter (100 ms, exact)"]
    assert all(r.goal_met for r in exact)
    # Every gauge keeps survival within 2% of the goal even when a
    # tight goal slips.
    for label, results in table.items():
        for result in results:
            assert result.survived_seconds >= 0.98 * result.goal_seconds, label
