"""Ablation: the two hysteresis components (Section 5.1.3).

The trigger's upgrade margin is 5% of residual energy (variable) plus
1% of initial energy (constant).  Removing both should produce visibly
more fidelity oscillation for the same goal; the goal should still be
met (degradation is unaffected), but the user experience is choppier.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)

INITIAL_ENERGY = 8_000.0

VARIANTS = {
    "paper (5% var + 1% const)": {},
    "no variable component": {"variable_fraction": 0.0},
    "no constant component": {"constant_fraction": 0.0},
    "no hysteresis at all": {"variable_fraction": 0.0, "constant_fraction": 0.0},
}


def sweep():
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY)
    goal = derive_goals(t_hi, t_lo, count=3)[1]
    return {
        label: run_goal_experiment(goal, initial_energy=INITIAL_ENERGY, **kwargs)
        for label, kwargs in VARIANTS.items()
    }


def test_ablation_hysteresis(benchmark, report):
    results = run_once(benchmark, sweep)

    rows = [
        [
            label,
            "Yes" if result.goal_met else "No",
            f"{result.residual_energy:.0f}",
            str(result.total_adaptations),
        ]
        for label, result in results.items()
    ]
    report(render_table(
        ["Variant", "Goal met", "Residue (J)", "Adaptations"],
        rows,
        title="Ablation — hysteresis components",
    ))

    paper = results["paper (5% var + 1% const)"]
    none = results["no hysteresis at all"]
    assert paper.goal_met
    # Without hysteresis the system oscillates: strictly more upcalls.
    assert none.total_adaptations > paper.total_adaptations
