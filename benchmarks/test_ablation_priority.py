"""Ablation: the static priority ladder (Section 5.1.3).

Odyssey degrades the lowest-priority application first and upgrades in
reverse order, so the Web browser (highest priority) keeps its fidelity
while speech (lowest) absorbs the degradation.  With uniform
priorities, degradation order falls back to registration order and the
high-priority applications lose their protection.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)

INITIAL_ENERGY = 8_000.0

VARIANTS = {
    "paper (speech<video<map<web)": {
        "speech": 1, "video": 2, "map": 3, "web": 4,
    },
    "uniform priorities": {"speech": 1, "video": 1, "map": 1, "web": 1},
    "inverted priorities": {"speech": 4, "video": 3, "map": 2, "web": 1},
}


def final_fidelities(result):
    levels = {}
    for record in result.timeline.category("fidelity"):
        levels[record.label] = record.value[1]  # normalized 0..1
    return levels


def sweep():
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY)
    goal = derive_goals(t_hi, t_lo, count=3)[0]  # tight: forces degradation
    return {
        label: run_goal_experiment(
            goal, initial_energy=INITIAL_ENERGY, priorities=priorities
        )
        for label, priorities in VARIANTS.items()
    }


def test_ablation_priority(benchmark, report):
    results = run_once(benchmark, sweep)

    rows = []
    for label, result in results.items():
        levels = final_fidelities(result)
        rows.append([
            label,
            "Yes" if result.goal_met else "No",
            " ".join(f"{app}={levels[app]:.2f}" for app in sorted(levels)),
        ])
    report(render_table(
        ["Variant", "Goal met", "Final normalized fidelity"],
        rows,
        title="Ablation — priority ladder under a tight goal",
    ))

    paper = final_fidelities(results["paper (speech<video<map<web)"])
    inverted = final_fidelities(results["inverted priorities"])
    # Paper ordering protects the Web app at speech's expense.
    assert paper["web"] >= paper["speech"]
    # Inverting the priorities protects speech instead.
    assert inverted["speech"] >= inverted["web"]
    # The goal is met regardless — priorities shape *who* degrades.
    for result in results.values():
        assert result.goal_met
