"""The paper's abstract, quantified.

"Our results show energy reductions in the range of 7% to 72%, with a
mean of 36%.  Combined with hardware power management, we achieve
overall reductions between 31% and 76%, with a mean of 50% — in
effect, doubling battery life."

This benchmark recomputes those headline numbers from the reproduction's
own Figure 6/8/10/13 sweeps: per application, fidelity-only reduction
(lowest fidelity vs hardware-only PM) and overall reduction (lowest
fidelity + PM vs baseline), averaged across the four data objects, then
summarized across applications.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import (
    map_energy_table,
    speech_energy_table,
    video_energy_table,
    web_energy_table,
)

# (table function, lowest-fidelity config) per application.
APPS = {
    "video": (video_energy_table, "combined"),
    "speech": (speech_energy_table, "hybrid-reduced"),
    "map": (map_energy_table, "crop-secondary"),
    "web": (web_energy_table, "jpeg-5"),
}


def compute_claims():
    rows = {}
    for app, (table_fn, lowest) in APPS.items():
        table = table_fn()
        objects = list(table["baseline"])
        fidelity_only = [
            1.0 - table[lowest][obj] / table["hw-only"][obj] for obj in objects
        ]
        overall = [
            1.0 - table[lowest][obj] / table["baseline"][obj] for obj in objects
        ]
        rows[app] = {
            "fidelity": sum(fidelity_only) / len(fidelity_only),
            "fidelity_range": (min(fidelity_only), max(fidelity_only)),
            "overall": sum(overall) / len(overall),
            "overall_range": (min(overall), max(overall)),
        }
    return rows


def test_headline_claims(benchmark, report):
    rows = run_once(benchmark, compute_claims)

    table_rows = []
    for app, r in rows.items():
        table_rows.append([
            app,
            f"{r['fidelity_range'][0]:.0%}-{r['fidelity_range'][1]:.0%}",
            f"{r['fidelity']:.0%}",
            f"{r['overall_range'][0]:.0%}-{r['overall_range'][1]:.0%}",
            f"{r['overall']:.0%}",
        ])
    fidelity_mean = sum(r["fidelity"] for r in rows.values()) / len(rows)
    overall_mean = sum(r["overall"] for r in rows.values()) / len(rows)
    battery_factor = 1.0 / (1.0 - overall_mean)
    report(render_table(
        ["App", "Fidelity range", "Fidelity mean", "Overall range",
         "Overall mean"],
        table_rows,
        title="Headline claims (paper abstract: fidelity 7-72% mean 36%; "
              "overall 31-76% mean 50% = 2.0x battery life)",
    ))
    report(f"measured fidelity-reduction mean: {fidelity_mean:.0%} "
           f"(paper 36%)")
    report(f"measured overall mean: {overall_mean:.0%} (paper 50%)")
    report(f"battery-life factor at lowest fidelity: {battery_factor:.2f}x "
           f"(paper ~2.0x)")

    # The reproduction's spread and means land near the paper's.
    all_fidelity = [
        v for r in rows.values() for v in r["fidelity_range"]
    ]
    assert min(all_fidelity) < 0.20      # some app saves little (web)
    assert max(all_fidelity) > 0.50      # some app saves a lot (speech)
    assert 0.25 <= fidelity_mean <= 0.45  # paper: 36%
    assert 0.38 <= overall_mean <= 0.60   # paper: 50%
    assert battery_factor > 1.6           # "in effect, doubling"
