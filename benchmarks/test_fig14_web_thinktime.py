"""Figure 14: effect of user think time for Web browsing.

Energy for Image 1 at think times 0/5/10/20 s in three cases, with the
Section 3.5 linear model fitted to each.  The paper notes the close
spacing of the PM and lowest-fidelity lines — the small benefit of Web
fidelity reduction — and the divergence of the baseline line.
"""

from conftest import run_once

from repro.analysis import fit_linear, render_table
from repro.experiments import measure_web
from repro.workloads import THINK_SWEEP_S, image_by_name

CASES = ("baseline", "hw-only", "jpeg-5")


def sweep_think_times():
    image = image_by_name("image-1")
    table = {}
    for config in CASES:
        energies = [
            measure_web(image, config, think_time_s=t) for t in THINK_SWEEP_S
        ]
        table[config] = (energies, fit_linear(THINK_SWEEP_S, energies))
    return table


def test_fig14_web_thinktime(benchmark, report):
    table = run_once(benchmark, sweep_think_times)

    rows = []
    for config, (energies, fit) in table.items():
        rows.append(
            [config]
            + [f"{e:.1f}" for e in energies]
            + [f"{fit.intercept:.1f}", f"{fit.slope:.2f}", f"{fit.r_squared:.5f}"]
        )
    report(render_table(
        ["Case (J)"] + [f"t={t:.0f}s" for t in THINK_SWEEP_S]
        + ["E0 (J)", "PB (W)", "R^2"],
        rows,
        title="Figure 14 — Web energy vs think time (Image 1)",
    ))

    fits = {config: fit for config, (_e, fit) in table.items()}
    for config, fit in fits.items():
        assert fit.r_squared > 0.999, config
    # Diverging baseline, near-identical PM and lowest-fidelity slopes.
    assert fits["baseline"].slope > fits["hw-only"].slope
    assert abs(fits["hw-only"].slope - fits["jpeg-5"].slope) < 0.1
    # Close spacing of the two latter lines: small fidelity benefit.
    gap_at_20 = fits["hw-only"].predict(20) - fits["jpeg-5"].predict(20)
    base_gap = fits["baseline"].predict(20) - fits["hw-only"].predict(20)
    assert gap_at_20 < base_gap
