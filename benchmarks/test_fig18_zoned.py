"""Figure 18: projected energy impact of zoned backlighting.

Video and map energy with the stock display vs 4-zone (2x2) and 8-zone
(2x4) zoned-backlight panels, at hardware-only power management and at
lowest fidelity, normalized to the stock-display baseline — the paper's
projection methodology (Section 4.2).
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import measure_map_zoned, measure_video_zoned
from repro.workloads import map_by_name
from repro.workloads.videos import VideoClip

ZONES = ("no-zones", "4-zones", "8-zones")


def sweep():
    clip = VideoClip("zoned-clip", 30.0, 12.0, 16_250)
    city = map_by_name("allentown")
    table = {"video": {}, "map": {}}
    for config in ("hw-only", "combined"):
        table["video"][config] = {
            z: measure_video_zoned(clip, config, z) for z in ZONES
        }
    for config in ("hw-only", "crop-secondary"):
        table["map"][config] = {
            z: measure_map_zoned(city, config, z) for z in ZONES
        }
    return table


def test_fig18_zoned(benchmark, report):
    table = run_once(benchmark, sweep)

    rows = []
    for app, configs in table.items():
        for config, by_zone in configs.items():
            base = by_zone["no-zones"][0]
            rows.append([
                app, config,
                f"{base:.0f}",
                f"{by_zone['4-zones'][0] / base:.3f} ({by_zone['4-zones'][1]} lit)",
                f"{by_zone['8-zones'][0] / base:.3f} ({by_zone['8-zones'][1]} lit)",
            ])
    report(render_table(
        ["App", "Config", "No zones (J)", "4 zones (rel)", "8 zones (rel)"],
        rows,
        title="Figure 18 — zoned backlighting projection "
              "(paper: video 17-18% @4z full fid; map 0% @4z full, "
              "21-29% at lowest fidelity)",
    ))

    video = table["video"]
    mp = table["map"]
    # Video fits one 4-zone cell: substantial savings even at full fid.
    v_hw = 1 - video["hw-only"]["4-zones"][0] / video["hw-only"]["no-zones"][0]
    assert 0.10 < v_hw < 0.30
    # 8 zones never worse than 4 zones.
    for app, configs in table.items():
        for config, by_zone in configs.items():
            assert by_zone["8-zones"][0] <= by_zone["4-zones"][0] + 1e-6
    # Full-fidelity map spans all 4 zones: no 4-zone benefit.
    m_hw4 = 1 - mp["hw-only"]["4-zones"][0] / mp["hw-only"]["no-zones"][0]
    assert abs(m_hw4) < 0.01
    # Lowest fidelity unlocks zoned savings for the map.
    m_low4 = (
        1 - mp["crop-secondary"]["4-zones"][0]
        / mp["crop-secondary"]["no-zones"][0]
    )
    assert m_low4 > 0.10
    # Zone occupancy matches the paper's statements.
    assert video["hw-only"]["4-zones"][1] == 1
    assert video["hw-only"]["8-zones"][1] == 2
    assert mp["hw-only"]["8-zones"][1] == 6
    assert mp["crop-secondary"]["4-zones"][1] == 2
    assert mp["crop-secondary"]["8-zones"][1] == 3
