"""Ablation: the Section 4.1 window-manager features, quantified.

The paper envisions zoned-display window managers with a snap-to
feature (windows nudged to straddle the fewest zones) and focus-based
illumination (only the focused window bright, the rest dim or dark).
This ablation plays a video alongside a map window on an 8-zone panel
under four illumination policies and measures the display's share of
the savings.
"""

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.apps import ZonedWindowManager
from repro.experiments import build_rig
from repro.hardware import Rect, ZonedDisplay
from repro.workloads.videos import VideoClip

# A video window deliberately misaligned with the 2x4 zone grid.
VIDEO_RECT = Rect(150, 120, 320, 240)
MAP_RECT = Rect(520, 320, 260, 260)


def play_under_policy(policy):
    rig = build_rig(pm_enabled=True, zoned=(2, 4))
    display = rig.machine["display"]
    player = rig.apps["video"]
    clip = VideoClip("wm-clip", 30.0, 12.0, 16_250)

    if policy == "all-bright":
        display.set_all_zones(ZonedDisplay.BRIGHT)
        lit = display.zones
    else:
        peripheral = (
            ZonedDisplay.OFF if policy == "snap+focus-dark" else ZonedDisplay.DIM
        )
        mgr = ZonedWindowManager(
            display, max_snap=80, peripheral_level=peripheral
        )
        snap = policy != "focus-only"
        mgr.place("video", VIDEO_RECT, snap=snap)
        mgr.place("map", MAP_RECT, snap=snap)
        mgr.set_focus("video")
        bright, dim = mgr.zones_lit()
        lit = bright + dim
    proc = rig.sim.spawn(player.play(clip))
    energy = rig.run_until_complete(proc)
    return energy, lit


POLICIES = ("all-bright", "focus-only", "snap+focus", "snap+focus-dark")


def sweep():
    return {policy: play_under_policy(policy) for policy in POLICIES}


def test_ablation_windowmgr(benchmark, report):
    table = run_once(benchmark, sweep)

    base = table["all-bright"][0]
    rows = [
        [policy, f"{energy:.0f}", str(lit), f"{1 - energy / base:.1%}"]
        for policy, (energy, lit) in table.items()
    ]
    report(render_table(
        ["Policy", "Energy (J)", "Zones lit", "Saving"],
        rows,
        title="Ablation — §4.1 window management on an 8-zone display "
              "(video focused, map peripheral)",
    ))

    # Each feature adds savings on top of the previous.
    assert table["focus-only"][0] < table["all-bright"][0]
    assert table["snap+focus"][0] <= table["focus-only"][0] + 1e-6
    assert table["snap+focus-dark"][0] < table["snap+focus"][0]
    # Snap-to reduces the zones the misaligned windows occupy.
    assert table["snap+focus"][1] <= table["focus-only"][1]
