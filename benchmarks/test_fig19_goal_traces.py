"""Figure 19: example of goal-directed adaptation.

Two experiments with the same 12 kJ supply and different duration
goals.  The top graph of the figure shows supply and estimated demand
converging over time; the lower graphs show per-application fidelity,
with the highest-priority Web application staying at high fidelity.
The benchmark prints a decimated trace of both experiments.
"""

from conftest import run_once

from repro.analysis import render_table
from repro.experiments import (
    derive_goals,
    fidelity_runtime_bounds,
    run_goal_experiment,
)

INITIAL_ENERGY = 12_000.0


def run_two_goals():
    t_hi, t_lo = fidelity_runtime_bounds(INITIAL_ENERGY)
    goals = derive_goals(t_hi, t_lo, count=4)
    # Paper's pairing: a short goal (20 min) needing little adaptation
    # and a long goal (26 min) forcing deep degradation.
    results = {
        "short": run_goal_experiment(goals[0], initial_energy=INITIAL_ENERGY),
        "long": run_goal_experiment(goals[-1], initial_energy=INITIAL_ENERGY),
    }
    return (t_hi, t_lo), results


def decimate(times, values, points=12):
    if not times:
        return []
    step = max(1, len(times) // points)
    return list(zip(times, values))[::step]


def test_fig19_goal_traces(benchmark, report):
    (t_hi, t_lo), results = run_once(benchmark, run_two_goals)

    report(
        f"Figure 19 — goal-directed adaptation on {INITIAL_ENERGY:.0f} J "
        f"(fidelity bounds: {t_hi:.0f}s highest, {t_lo:.0f}s lowest; "
        f"paper analogues 1167s and 1626s on 12 kJ)"
    )
    for label, result in results.items():
        times, supply = result.timeline.series("energy", "supply")
        _t, demand = result.timeline.series("energy", "demand")
        rows = [
            [f"{t:.0f}", f"{s:.0f}", f"{d:.0f}"]
            for (t, s), (_t2, d) in zip(
                decimate(times, supply), decimate(times, demand)
            )
        ]
        report(render_table(
            ["t (s)", "supply (J)", "demand (J)"],
            rows,
            title=f"{label} goal = {result.goal_seconds:.0f}s "
                  f"(met: {result.goal_met}, residue {result.residual_energy:.0f} J)",
        ))
        final_fidelity = {}
        for record in result.timeline.category("fidelity"):
            final_fidelity[record.label] = record.value[0]
        report(f"final fidelities: {final_fidelity}")
        report(f"adaptations: {result.adaptations}")

        assert result.goal_met
        # Demand tracks supply closely late in the run (top graph).
        half = len(supply) // 2
        for s, d in zip(supply[half:], demand[half:]):
            assert d <= s * 1.15 + 50.0

    # Figure 19's message: the longer duration goal forces deeper
    # degradation (the paper's 26-minute run holds three applications
    # at lowest fidelity; the 20-minute run degrades only slightly).
    def mean_normalized_fidelity(result):
        records = result.timeline.category("fidelity")
        last = {}
        for record in records:
            last[record.label] = record.value[1]
        return sum(last.values()) / len(last)

    assert mean_normalized_fidelity(results["long"]) <= (
        mean_normalized_fidelity(results["short"]) + 1e-9
    )
